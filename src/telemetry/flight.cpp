#include "telemetry/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace tls::telemetry {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a64_step(std::uint64_t h, const std::uint8_t* p,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t raw[4];
  std::memcpy(raw, &v, 4);
  for (std::uint8_t b : raw) out.push_back(b);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t raw[8];
  std::memcpy(raw, &v, 8);
  for (std::uint8_t b : raw) out.push_back(b);
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Pack/unpack of the middle slot word: kind in bits [32,40), `a` in the
// low 32. The layout is part of the FLIGHT.bin format — do not rearrange.
std::uint64_t pack_w1(std::uint8_t kind, std::uint32_t a) {
  return (static_cast<std::uint64_t>(kind) << 32) | a;
}

// Sanity ceilings for decoding untrusted bytes: far above anything the
// daemon writes, low enough that a mutated header cannot demand gigabytes.
constexpr std::uint32_t kMaxRings = 4096;
constexpr std::uint32_t kMaxRingCapacity = 1u << 20;

}  // namespace

const char* flight_event_kind_name(std::uint8_t kind) {
  switch (static_cast<FlightEventKind>(kind)) {
    case FlightEventKind::kNone: return "none";
    case FlightEventKind::kConnAccept: return "conn_accept";
    case FlightEventKind::kConnClose: return "conn_close";
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kIngest: return "ingest";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kMalformed: return "malformed";
    case FlightEventKind::kFramePoison: return "frame_poison";
    case FlightEventKind::kCreditViolation: return "credit_violation";
    case FlightEventKind::kCreditGrant: return "credit_grant";
    case FlightEventKind::kIdleTimeout: return "idle_timeout";
    case FlightEventKind::kCheckpointEpoch: return "checkpoint_epoch";
    case FlightEventKind::kJournalDegrade: return "journal_degrade";
    case FlightEventKind::kDrainStart: return "drain_start";
    case FlightEventKind::kFlightDump: return "flight_dump";
    case FlightEventKind::kCrashSignal: return "crash_signal";
  }
  return "unknown";
}

FlightRing::FlightRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2)),
      slots_(new Slot[capacity_]) {}

void FlightRing::record(FlightEventKind kind, std::uint32_t a,
                        std::uint64_t b, std::uint64_t ts_us) {
  const std::uint64_t seq = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[seq % capacity_];
  s.w0.store(ts_us, std::memory_order_relaxed);
  s.w1.store(pack_w1(static_cast<std::uint8_t>(kind), a),
             std::memory_order_relaxed);
  s.w2.store(b, std::memory_order_relaxed);
  // Release-publish: a reader that observes head > seq also observes the
  // three word stores above.
  head_.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::snapshot(std::uint16_t lane) const {
  const std::uint64_t h1 = head_.load(std::memory_order_acquire);
  const std::uint64_t resident = std::min<std::uint64_t>(h1, capacity_);
  std::vector<FlightEvent> out;
  out.reserve(resident);
  // Copy the candidate slots, then re-read head: any slot whose sequence
  // could have been overwritten while we copied (seq + capacity < h2) is
  // discarded, so no torn event survives.
  struct Raw {
    std::uint64_t w0, w1, w2;
  };
  std::vector<Raw> raw(resident);
  const std::uint64_t first = h1 - resident;
  for (std::uint64_t i = 0; i < resident; ++i) {
    const Slot& s = slots_[(first + i) % capacity_];
    raw[i].w0 = s.w0.load(std::memory_order_relaxed);
    raw[i].w1 = s.w1.load(std::memory_order_relaxed);
    raw[i].w2 = s.w2.load(std::memory_order_relaxed);
  }
  const std::uint64_t h2 = head_.load(std::memory_order_acquire);
  for (std::uint64_t i = 0; i < resident; ++i) {
    const std::uint64_t seq = first + i;
    // The writer reuses slot (seq % capacity) for event seq + capacity; if
    // that newer event was published before our second head read, our copy
    // of this slot may be torn — discard it.
    if (h2 > capacity_ && seq < h2 - capacity_) continue;
    FlightEvent e;
    e.ts_us = raw[i].w0;
    e.seq = seq;
    e.kind = static_cast<std::uint8_t>((raw[i].w1 >> 32) & 0xff);
    e.a = static_cast<std::uint32_t>(raw[i].w1 & 0xffffffffu);
    e.b = raw[i].w2;
    e.lane = lane;
    if (e.kind == static_cast<std::uint8_t>(FlightEventKind::kNone)) continue;
    out.push_back(e);
  }
  return out;
}

FlightRecorder::FlightRecorder(std::size_t lanes,
                               std::size_t events_per_lane) {
  rings_.reserve(std::max<std::size_t>(lanes, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(lanes, 1); ++i) {
    rings_.push_back(std::make_unique<FlightRing>(events_per_lane));
  }
}

std::vector<std::uint8_t> FlightRecorder::serialize() const {
  std::vector<std::uint8_t> out;
  const std::uint32_t cap =
      static_cast<std::uint32_t>(rings_.empty() ? 0 : rings_[0]->capacity());
  out.reserve(kFlightHeaderBytes +
              rings_.size() * (8 + cap * kFlightEventBytes) + 8);
  append_u32(out, kFlightMagic);
  append_u32(out, kFlightVersion);
  append_u32(out, static_cast<std::uint32_t>(rings_.size()));
  append_u32(out, cap);
  append_u32(out, 0);  // crash_signo: clean dump
  append_u32(out, 0);  // reserved
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const FlightRing& ring = *rings_[r];
    // A consistent snapshot re-laid into canonical ring positions: slots
    // the snapshot excluded (torn / overwritten mid-copy) become kNone.
    const std::vector<FlightEvent> events =
        ring.snapshot(static_cast<std::uint16_t>(r));
    const std::uint64_t head =
        events.empty() ? ring.total() : events.back().seq + 1;
    append_u64(out, head);
    std::vector<std::uint64_t> words(
        static_cast<std::size_t>(cap) * 3, 0);
    for (const FlightEvent& e : events) {
      const std::size_t pos = static_cast<std::size_t>(e.seq % cap) * 3;
      words[pos + 0] = e.ts_us;
      words[pos + 1] = pack_w1(e.kind, e.a);
      words[pos + 2] = e.b;
    }
    for (const std::uint64_t w : words) append_u64(out, w);
  }
  append_u64(out, fnv1a64_step(kFnvOffset, out.data(), out.size()));
  return out;
}

bool FlightRecorder::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

namespace {

// Buffered fd writer restricted to async-signal-safe calls (write(2)
// only), folding the FNV checksum as bytes stream out.
struct SignalSafeWriter {
  int fd = -1;
  std::uint64_t fnv = kFnvOffset;
  std::uint8_t buf[512] = {};
  std::size_t used = 0;
  bool failed = false;

  void flush() {
    std::size_t off = 0;
    while (off < used && !failed) {
      const ssize_t n = ::write(fd, buf + off, used - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        failed = true;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    used = 0;
  }
  void push(const void* p, std::size_t n, bool checksum = true) {
    const std::uint8_t* b = static_cast<const std::uint8_t*>(p);
    if (checksum) fnv = fnv1a64_step(fnv, b, n);
    while (n > 0) {
      const std::size_t take = std::min(n, sizeof(buf) - used);
      std::memcpy(buf + used, b, take);
      used += take;
      b += take;
      n -= take;
      if (used == sizeof(buf)) flush();
    }
  }
  void push_u32(std::uint32_t v) { push(&v, 4); }
  void push_u64(std::uint64_t v) { push(&v, 8); }
};

}  // namespace

void FlightRecorder::dump_to_fd_signal_safe(int fd,
                                            std::uint32_t crash_signo) const {
  SignalSafeWriter w{fd};
  const std::uint32_t cap =
      static_cast<std::uint32_t>(rings_.empty() ? 0 : rings_[0]->capacity());
  w.push_u32(kFlightMagic);
  w.push_u32(kFlightVersion);
  w.push_u32(static_cast<std::uint32_t>(rings_.size()));
  w.push_u32(cap);
  w.push_u32(crash_signo);
  w.push_u32(0);
  for (const auto& ring : rings_) {
    w.push_u64(ring->total());
    const auto* slots =
        static_cast<const std::atomic<std::uint64_t>*>(ring->raw_slots());
    const std::size_t words = ring->capacity() * 3;
    for (std::size_t i = 0; i < words; ++i) {
      w.push_u64(slots[i].load(std::memory_order_relaxed));
    }
  }
  const std::uint64_t checksum = w.fnv;
  w.push(&checksum, 8, /*checksum=*/false);
  w.flush();
}

FlightDump decode_flight(std::span<const std::uint8_t> bytes) {
  FlightDump dump;
  if (bytes.size() < kFlightHeaderBytes + 8) return dump;
  const std::uint8_t* p = bytes.data();
  if (read_u32(p) != kFlightMagic) return dump;
  dump.version = read_u32(p + 4);
  const std::uint32_t ring_count = read_u32(p + 8);
  dump.ring_capacity = read_u32(p + 12);
  dump.crash_signo = read_u32(p + 16);
  if (dump.version != kFlightVersion) return dump;
  if (ring_count == 0 || ring_count > kMaxRings) return dump;
  if (dump.ring_capacity == 0 || dump.ring_capacity > kMaxRingCapacity) {
    return dump;
  }
  const std::size_t ring_bytes =
      8 + static_cast<std::size_t>(dump.ring_capacity) * kFlightEventBytes;
  const std::size_t expected =
      kFlightHeaderBytes + static_cast<std::size_t>(ring_count) * ring_bytes +
      8;
  if (bytes.size() != expected) return dump;
  dump.ok = true;
  const std::uint64_t stored = read_u64(p + bytes.size() - 8);
  dump.checksum_ok =
      stored == fnv1a64_step(kFnvOffset, p, bytes.size() - 8);

  std::size_t off = kFlightHeaderBytes;
  for (std::uint32_t r = 0; r < ring_count; ++r) {
    const std::uint64_t head = read_u64(p + off);
    off += 8;
    const std::uint64_t resident =
        std::min<std::uint64_t>(head, dump.ring_capacity);
    dump.totals.push_back(head);
    dump.dropped.push_back(head - resident);
    const std::uint64_t first = head - resident;
    for (std::uint64_t seq = first; seq < head; ++seq) {
      const std::size_t slot =
          off + static_cast<std::size_t>(seq % dump.ring_capacity) *
                    kFlightEventBytes;
      FlightEvent e;
      e.ts_us = read_u64(p + slot);
      const std::uint64_t w1 = read_u64(p + slot + 8);
      e.b = read_u64(p + slot + 16);
      e.kind = static_cast<std::uint8_t>((w1 >> 32) & 0xff);
      e.a = static_cast<std::uint32_t>(w1 & 0xffffffffu);
      e.seq = seq;
      e.lane = static_cast<std::uint16_t>(r);
      if (e.kind == static_cast<std::uint8_t>(FlightEventKind::kNone)) {
        continue;  // slot zeroed by a consistent-snapshot serialize
      }
      dump.events.push_back(e);
    }
    off += static_cast<std::size_t>(dump.ring_capacity) * kFlightEventBytes;
  }
  std::stable_sort(dump.events.begin(), dump.events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.ts_us < y.ts_us;
                   });
  return dump;
}

std::string render_flight(std::span<const std::uint8_t> bytes,
                          std::size_t max_events) {
  const FlightDump dump = decode_flight(bytes);
  std::ostringstream os;
  if (!dump.ok) {
    os << "flight dump: unreadable (" << bytes.size() << " bytes)\n";
    return os.str();
  }
  os << "flight dump: version=" << dump.version
     << " rings=" << dump.totals.size()
     << " capacity=" << dump.ring_capacity
     << " crash_signo=" << dump.crash_signo
     << " checksum=" << (dump.checksum_ok ? "ok" : "MISMATCH") << "\n";
  if (dump.crash_signo != 0) {
    os << "  !! dumped from crash handler: "
       << flight_event_kind_name(
              static_cast<std::uint8_t>(FlightEventKind::kCrashSignal))
       << " signo=" << dump.crash_signo << "\n";
  }
  for (std::size_t r = 0; r < dump.totals.size(); ++r) {
    os << "ring " << r << ": total=" << dump.totals[r]
       << " dropped=" << dump.dropped[r] << "\n";
  }
  std::size_t start = 0;
  if (dump.events.size() > max_events) {
    start = dump.events.size() - max_events;
    os << "... (" << start << " older events elided)\n";
  }
  for (std::size_t i = start; i < dump.events.size(); ++i) {
    const FlightEvent& e = dump.events[i];
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  ts=%12llu us lane=%2u seq=%8llu %-17s a=%u b=%llu\n",
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned>(e.lane),
                  static_cast<unsigned long long>(e.seq),
                  flight_event_kind_name(e.kind), e.a,
                  static_cast<unsigned long long>(e.b));
    os << line;
  }
  return os.str();
}

namespace {

// Crash-handler state: plain pointers/arrays only — the handler may run
// on a corrupted heap, so nothing here allocates or locks.
const FlightRecorder* g_crash_recorder = nullptr;
char g_crash_path[512] = {0};

void flight_crash_handler(int signo) {
  const FlightRecorder* rec = g_crash_recorder;
  if (rec != nullptr && g_crash_path[0] != '\0') {
    const int fd =
        ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      rec->dump_to_fd_signal_safe(fd, static_cast<std::uint32_t>(signo));
      ::close(fd);
    }
  }
  // Restore default disposition and re-raise so the process still dies
  // with the original signal (and core-dumps if configured to).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void install_flight_crash_handler(const FlightRecorder* recorder,
                                  const std::string& path) {
  g_crash_recorder = recorder;
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &flight_crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
}

void uninstall_flight_crash_handler() {
  g_crash_recorder = nullptr;
  g_crash_path[0] = '\0';
  ::signal(SIGSEGV, SIG_DFL);
  ::signal(SIGABRT, SIG_DFL);
  ::signal(SIGBUS, SIG_DFL);
}

}  // namespace tls::telemetry
