// Flight recorder — a fixed-size, lock-free, per-lane ring of compact
// binary events that is ALWAYS on, never allocates on the hot path, and
// survives the three ways a live daemon dies (DESIGN.md §17):
//
//   * SIGTERM drain     -> serialize() a consistent snapshot + render text
//   * kQueryFlight      -> the same snapshot over the wire
//   * SIGSEGV/ABRT/BUS  -> dump_to_fd_signal_safe() writes the raw ring
//                          memory from the crash handler (write(2) only —
//                          no malloc, no stdio, no locks)
//
// Concurrency model: one ring per writer lane (the daemon uses lane 0 for
// the event-loop thread and one lane per shard worker), so every ring has
// exactly ONE writer and tearing between writers is structurally
// impossible. Each 24-byte event is stored as three relaxed atomic words;
// readers snapshot the ring and keep only the index range that provably
// was not overwritten during the copy, so a concurrent snapshot never
// yields a torn event either (and the suite stays TSan/ASan clean).
//
// Drop-oldest accounting is exact: `head` counts every event ever
// recorded, so `dropped = head - min(head, capacity)` — nothing is ever
// silently truncated without being countable.
//
// FLIGHT.bin format (native-endian — a post-mortem artifact read on the
// machine that wrote it):
//
//   u32 magic 'TLSF' | u32 version | u32 ring_count | u32 ring_capacity
//   u32 crash_signo (0 = clean dump) | u32 reserved
//   per ring: u64 head, then ring_capacity * 24 raw event bytes
//   trailer: u64 FNV-1a-64 over every preceding byte
//
// The decoder never throws and tolerates arbitrary mutation (fuzzed):
// a bad checksum is reported, not fatal, because a crash dump with one
// torn in-flight event is still the best evidence available.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace tls::telemetry {

inline constexpr std::uint32_t kFlightMagic = 0x544C5346;  // "TLSF"
inline constexpr std::uint32_t kFlightVersion = 1;
inline constexpr std::size_t kFlightHeaderBytes = 24;
inline constexpr std::size_t kFlightEventBytes = 24;

/// What happened. Values are pinned (they live in FLIGHT.bin artifacts);
/// add new kinds at the end only.
enum class FlightEventKind : std::uint8_t {
  kNone = 0,
  kConnAccept = 1,       // a=conn id
  kConnClose = 2,        // a=conn id
  kAdmit = 3,            // a=conn id, b=shard
  kIngest = 4,           // a=shard, b=admit-to-observe latency us
  kShed = 5,             // a=conn id, b=shard queue depth at refusal
  kMalformed = 6,        // a=conn id, b=parse error code
  kFramePoison = 7,      // a=conn id, b=decode error
  kCreditViolation = 8,  // a=conn id
  kCreditGrant = 9,      // a=conn id, b=credits granted
  kIdleTimeout = 10,     // a=conn id
  kCheckpointEpoch = 11, // a=epoch, b=ingested at epoch
  kJournalDegrade = 12,  // journal writer fell back to per-frame mode
  kDrainStart = 13,
  kFlightDump = 14,      // a=reason (0 ticker, 1 drain, 2 query)
  kCrashSignal = 15,     // never recorded in a ring; rendered from header
};

/// Never returns null; unknown values render as "unknown" so a mutated
/// dump cannot crash the renderer.
[[nodiscard]] const char* flight_event_kind_name(std::uint8_t kind);

/// One decoded event. `lane` is the ring the event came from; `seq` is its
/// monotonic per-ring index (survives wraparound, so inter-dump diffs can
/// tell exactly how many events were dropped between two snapshots).
struct FlightEvent {
  std::uint64_t ts_us = 0;
  std::uint64_t seq = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::uint16_t lane = 0;
  std::uint8_t kind = 0;
};

/// Single-writer, fixed-capacity, drop-oldest event ring. record() is
/// wait-free and allocation-free: three relaxed atomic stores plus a
/// release publish of the new head.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity);

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Hot path — owning thread only.
  void record(FlightEventKind kind, std::uint32_t a, std::uint64_t b,
              std::uint64_t ts_us);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (monotonic).
  [[nodiscard]] std::uint64_t total() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events overwritten by drop-oldest so far — exact.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t h = total();
    return h > capacity_ ? h - capacity_ : 0;
  }

  /// Copies the resident events oldest-first, excluding any slot that may
  /// have been overwritten mid-copy (see header comment). Safe to call
  /// from any thread while the writer is live.
  [[nodiscard]] std::vector<FlightEvent> snapshot(std::uint16_t lane) const;

  /// Raw storage for the async-signal-safe dump path.
  [[nodiscard]] const void* raw_slots() const { return slots_.get(); }
  [[nodiscard]] std::size_t raw_bytes() const {
    return capacity_ * kFlightEventBytes;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> w0{0};  // ts_us
    std::atomic<std::uint64_t> w1{0};  // kind | pad | lane? (packed) | a
    std::atomic<std::uint64_t> w2{0};  // b
  };
  static_assert(sizeof(Slot) == kFlightEventBytes);

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// The recorder: a fixed set of lanes created up front (no lane is ever
/// added after threads start), plus the three dump paths.
class FlightRecorder {
 public:
  FlightRecorder(std::size_t lanes, std::size_t events_per_lane);

  [[nodiscard]] std::size_t lanes() const { return rings_.size(); }
  [[nodiscard]] FlightRing& lane(std::size_t i) { return *rings_[i]; }
  [[nodiscard]] const FlightRing& lane(std::size_t i) const {
    return *rings_[i];
  }

  /// Consistent snapshot serialized to the FLIGHT.bin format. Safe while
  /// writers are live (torn-slot-excluding snapshot per ring).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Writes serialize() to `path` durably (tmp + fsync + rename).
  bool write_file(const std::string& path) const;

  /// Async-signal-safe raw dump: header + ring memory + checksum, using
  /// only write(2). Called from the crash handler; events being written at
  /// crash time may be torn — the decoder tolerates that, the checksum
  /// still covers exactly the bytes written.
  void dump_to_fd_signal_safe(int fd, std::uint32_t crash_signo) const;

 private:
  std::vector<std::unique_ptr<FlightRing>> rings_;
};

/// Decoded FLIGHT.bin.
struct FlightDump {
  bool ok = false;           // header parsed, structure plausible
  bool checksum_ok = false;  // trailer matched the byte stream
  std::uint32_t version = 0;
  std::uint32_t crash_signo = 0;
  std::uint32_t ring_capacity = 0;
  /// Per-ring monotonic totals (head counters) and resident events.
  std::vector<std::uint64_t> totals;
  std::vector<std::uint64_t> dropped;
  /// All resident events across rings, merged oldest-timestamp-first.
  std::vector<FlightEvent> events;
};

/// Never throws; arbitrary bytes yield ok=false or a best-effort decode
/// with checksum_ok=false.
[[nodiscard]] FlightDump decode_flight(std::span<const std::uint8_t> bytes);

/// Human-readable rendering of a dump: header summary, per-ring drop
/// accounting, then the merged chronological timeline (capped at
/// `max_events` lines, newest kept). Never throws on any input.
[[nodiscard]] std::string render_flight(std::span<const std::uint8_t> bytes,
                                        std::size_t max_events = 10000);

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that write `recorder` to
/// `path` (async-signal-safe) and then re-raise with default disposition.
/// The recorder must outlive the process (or be uninstalled first).
void install_flight_crash_handler(const FlightRecorder* recorder,
                                  const std::string& path);

/// Restores default disposition and forgets the recorder pointer.
void uninstall_flight_crash_handler();

}  // namespace tls::telemetry
