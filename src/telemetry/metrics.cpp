#include "telemetry/metrics.hpp"

#include <algorithm>

namespace tls::telemetry {

void Histogram::record(std::uint64_t sample) {
  if (counts.size() != bounds.size() + 1) {
    counts.assign(bounds.size() + 1, 0);
  }
  std::size_t bucket = bounds.size();  // +Inf by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (sample <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  if (count == 0 || sample < min) min = sample;
  if (count == 0 || sample > max) max = sample;
  ++count;
  sum += sample;
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  if (bounds == other.bounds) {
    if (counts.size() != bounds.size() + 1) {
      counts.assign(bounds.size() + 1, 0);
    }
    for (std::size_t i = 0; i < counts.size() && i < other.counts.size();
         ++i) {
      counts[i] += other.counts[i];
    }
  }
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
}

std::vector<std::uint64_t> duration_buckets_us() {
  return {10,     100,     1'000,     10'000,
          100'000, 1'000'000, 10'000'000};
}

std::vector<std::uint64_t> log_linear_buckets(std::uint64_t lo,
                                              std::uint64_t hi,
                                              unsigned subdiv) {
  if (lo == 0) lo = 1;
  if (subdiv == 0) subdiv = 1;
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t base = lo; base < hi && base != 0; base *= 2) {
    const std::uint64_t step = std::max<std::uint64_t>(1, base / subdiv);
    for (unsigned i = 1; i <= subdiv; ++i) {
      const std::uint64_t bound = base + step * i;
      if (bounds.empty() || bound > bounds.back()) bounds.push_back(bound);
    }
    // Overflow guard: a base in the top octave of u64 would wrap.
    if (base > (UINT64_MAX / 2)) break;
  }
  return bounds;
}

std::vector<std::uint64_t> wide_latency_buckets_us() {
  return log_linear_buckets(1, 64'000'000, 4);
}

std::string MetricsRegistry::key_of(std::string_view name,
                                    std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

Metric& MetricsRegistry::resolve(MetricKind kind, std::string_view name,
                                 std::string_view labels,
                                 std::string_view help, bool timing) {
  auto [it, inserted] = metrics_.try_emplace(key_of(name, labels));
  Metric& m = it->second;
  if (inserted) {
    m.kind = kind;
    m.name = std::string(name);
    m.labels = std::string(labels);
    m.help = std::string(help);
    m.timing = timing;
  } else if (m.help.empty() && !help.empty()) {
    m.help = std::string(help);
  }
  return m;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels,
                                  std::string_view help, bool timing) {
  return resolve(MetricKind::kCounter, name, labels, help, timing).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels,
                              std::string_view help, bool timing) {
  return resolve(MetricKind::kGauge, name, labels, help, timing).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds,
                                      std::string_view labels,
                                      std::string_view help, bool timing) {
  Metric& m = resolve(MetricKind::kHistogram, name, labels, help, timing);
  if (m.histogram.bounds.empty() && m.histogram.count == 0) {
    m.histogram.bounds = std::move(bounds);
    m.histogram.counts.assign(m.histogram.bounds.size() + 1, 0);
  }
  return m.histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.metrics_) {
    auto [it, inserted] = metrics_.try_emplace(key, theirs);
    if (inserted) continue;
    Metric& mine = it->second;
    if (mine.kind != theirs.kind) continue;  // programming error; keep ours
    switch (mine.kind) {
      case MetricKind::kCounter:
        mine.counter.value += theirs.counter.value;
        break;
      case MetricKind::kGauge:
        mine.gauge.value = std::max(mine.gauge.value, theirs.gauge.value);
        break;
      case MetricKind::kHistogram:
        mine.histogram.merge(theirs.histogram);
        break;
    }
    if (mine.help.empty()) mine.help = theirs.help;
  }
}

const Metric* MetricsRegistry::find(std::string_view name,
                                    std::string_view labels) const {
  const auto it = metrics_.find(key_of(name, labels));
  return it == metrics_.end() ? nullptr : &it->second;
}

}  // namespace tls::telemetry
