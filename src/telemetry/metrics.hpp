// Unified metrics registry — the single interface every subsystem's
// observability counters report through (ObserveCache hit/miss stats,
// ErrorTaxonomy totals, QuarantineRing occupancy, checkpoint frame counts,
// ThreadPool task accounting, fault-injector triggers, pipeline phase
// timers). Three metric kinds:
//
//   counter    monotonic u64; merge = addition
//   gauge      u64 snapshot;  merge = max (associative + commutative, so a
//              late re-set never depends on merge order)
//   histogram  fixed upper-bound buckets over u64 samples (+Inf implicit);
//              merge = per-bucket addition, plus exact count/sum/min/max
//
// Determinism contract (DESIGN.md §12): every merge is associative and
// commutative over exact integer state, so folding per-shard registries in
// the study's fixed (month, shard) plan order yields a thread-count-
// independent result for every metric whose samples are themselves
// deterministic. Wall-clock-derived metrics are registered with
// timing=true and excluded from deterministic_digest() — they exist only
// in the metrics/trace artifacts, never in exported CSV bytes.
//
// Naming convention: tls_repro_<subsystem>_<name><unit> where <unit> is a
// trailing component — `_total` for unitless counts, `_us` for
// microseconds, `_bytes` for sizes. Label sets are attached as a
// Prometheus label body string (e.g. `kind="bit_flip"`); the registry key
// is `name{labels}` and iteration is in sorted key order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tls::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

/// Point-in-time snapshot; merge keeps the maximum so shard merges are
/// order-independent.
struct Gauge {
  std::uint64_t value = 0;
  void set(std::uint64_t v) { value = v; }
};

struct Histogram {
  /// Ascending upper bounds (inclusive, `sample <= bound`); one implicit
  /// +Inf bucket follows the last bound.
  std::vector<std::uint64_t> bounds;
  /// bounds.size() + 1 entries; counts[i] is the i-th bucket, back() is
  /// the +Inf overflow bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;

  void record(std::uint64_t sample);
  /// Per-bucket addition when bounds match; a bounds mismatch (a
  /// programming error) still folds count/sum/min/max so no sample is
  /// silently dropped from the totals.
  void merge(const Histogram& other);
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Power-of-ten duration buckets in microseconds: 10us .. 10s.
[[nodiscard]] std::vector<std::uint64_t> duration_buckets_us();

/// Log-linear (HDR-style) bucket bounds: each power-of-two octave from
/// `lo` up to at least `hi` is split into `subdiv` linear sub-buckets, so
/// relative resolution stays roughly constant (~1/subdiv) across the whole
/// dynamic range instead of collapsing to one bucket per decade. Bounds
/// are strictly ascending; duplicates from integer rounding at the small
/// end are collapsed. The wide-range histogram flavor used by the daemon's
/// per-stage latency attribution (DESIGN.md §17).
[[nodiscard]] std::vector<std::uint64_t> log_linear_buckets(
    std::uint64_t lo, std::uint64_t hi, unsigned subdiv);

/// The daemon's stage-latency bounds: 1us .. ~67s at 4 sub-buckets per
/// octave (~26 octaves, ~104 buckets) — wide enough that a credit stall
/// behind a shed storm and a sub-microsecond decode land in meaningfully
/// different buckets of the same histogram.
[[nodiscard]] std::vector<std::uint64_t> wide_latency_buckets_us();

struct Metric {
  MetricKind kind = MetricKind::kCounter;
  std::string name;    // base name (before any label set)
  std::string labels;  // Prometheus label body, e.g. kind="bit_flip"
  std::string help;
  /// Wall-clock- or schedule-derived (timings, cache-warmth counters):
  /// excluded from deterministic_digest().
  bool timing = false;

  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

/// Name-keyed metric store with deterministic (sorted-key) iteration and
/// stable metric addresses: entries live in a std::map, so a Counter*
/// handle resolved once stays valid for the registry's lifetime — the
/// lock-free per-shard hot-path idiom (one registry per shard, no shared
/// mutable state, merged after the fact).
class MetricsRegistry {
 public:
  /// Find-or-create. The first registration fixes help/timing (and bucket
  /// bounds for histograms); later calls with the same key reuse the entry.
  Counter& counter(std::string_view name, std::string_view labels = {},
                   std::string_view help = {}, bool timing = false);
  Gauge& gauge(std::string_view name, std::string_view labels = {},
               std::string_view help = {}, bool timing = false);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds,
                       std::string_view labels = {},
                       std::string_view help = {}, bool timing = true);

  /// Folds `other` into this registry: counters add, gauges max,
  /// histograms bucket-add; unseen metrics are copied. Associative and
  /// commutative, so any fixed fold order yields the same state.
  void merge(const MetricsRegistry& other);

  /// Metrics keyed by `name` or `name{labels}`, sorted.
  [[nodiscard]] const std::map<std::string, Metric>& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const Metric* find(std::string_view name,
                                   std::string_view labels = {}) const;
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] bool empty() const { return metrics_.empty(); }

  static std::string key_of(std::string_view name, std::string_view labels);

 private:
  Metric& resolve(MetricKind kind, std::string_view name,
                  std::string_view labels, std::string_view help,
                  bool timing);

  std::map<std::string, Metric> metrics_;
};

}  // namespace tls::telemetry
