// The one wall-clock abstraction shared by every timing consumer in the
// repo: pipeline spans, the metrics registry's duration histograms, the
// thread pool's busy accounting, and the bench binaries. Header-only so
// low-level libraries (core/shard) can time without linking telemetry.
//
// Determinism contract: wall-clock readings are observability-only. They
// flow into trace files and metrics artifacts, never into checkpoint
// digests, CSV exports, or any RNG-adjacent state.
#pragma once

#include <chrono>
#include <cstdint>

namespace tls::telemetry {

/// Monotonic now in microseconds (steady_clock; origin unspecified).
[[nodiscard]] inline std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal monotonic stopwatch: started at construction, restartable.
class Stopwatch {
 public:
  Stopwatch() : start_us_(now_us()) {}

  void restart() { start_us_ = now_us(); }
  [[nodiscard]] std::uint64_t start_us() const { return start_us_; }
  [[nodiscard]] std::uint64_t elapsed_us() const {
    return now_us() - start_us_;
  }
  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(elapsed_us()) / 1e6;
  }

 private:
  std::uint64_t start_us_;
};

}  // namespace tls::telemetry
