#include "telemetry/trace.hpp"

#include <algorithm>
#include <sstream>

namespace tls::telemetry {

void TraceRecorder::append(TraceRecorder&& other) {
  if (events_.empty()) {
    events_ = std::move(other.events_);
  } else {
    events_.insert(events_.end(),
                   std::make_move_iterator(other.events_.begin()),
                   std::make_move_iterator(other.events_.end()));
  }
  other.events_.clear();
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string TraceRecorder::to_json() const {
  std::uint64_t epoch = 0;
  if (!events_.empty()) {
    epoch = events_.front().ts_us;
    for (const auto& e : events_) epoch = std::min(epoch, e.ts_us);
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    append_json_string(out, e.name);
    out << ",\"cat\":";
    append_json_string(out, e.category);
    out << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << (e.ts_us - epoch) << ",\"dur\":" << e.dur_us;
    if (!e.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out << ",";
        append_json_string(out, e.args[i].first);
        out << ":" << e.args[i].second;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

}  // namespace tls::telemetry
