// Pipeline spans: lightweight RAII timers around the study phases
// (generate, observe, absorb, checkpoint encode/append, scan probe, CSV
// render), collected per (month, shard) task and exported as Chrome
// `trace_event` JSON — the format chrome://tracing and Perfetto load
// directly.
//
// Concurrency model mirrors the metrics registry: one TraceRecorder per
// shard task (no shared mutable state on the hot path), appended into the
// study-level recorder in the fixed plan order after the pool drains. The
// no-op sink is a null recorder pointer: a Span constructed against
// nullptr never reads the clock, so the disabled path costs one branch.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/stopwatch.hpp"

namespace tls::telemetry {

/// One complete ("ph":"X") trace event. `ts_us` is monotonic-clock
/// microseconds (normalized to the earliest event at export time); `tid`
/// is the lane the event renders on (the study uses one lane per shard
/// task plus lane 0 for study-level phases).
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  /// Numeric args shown in the trace viewer's detail pane.
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

class TraceRecorder {
 public:
  void add(TraceEvent event) { events_.push_back(std::move(event)); }
  /// Appends another recorder's events (shard-lane merge, plan order).
  void append(TraceRecorder&& other);
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Chrome trace_event JSON ({"traceEvents":[...]}). Timestamps are
  /// shifted so the earliest event starts at 0.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<TraceEvent> events_;
};

/// RAII span: measures construction-to-destruction (or close()) and
/// records one complete event. A null recorder makes every operation a
/// no-op without touching the clock.
class Span {
 public:
  Span(TraceRecorder* recorder, std::string name, std::string category,
       std::uint32_t tid)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.tid = tid;
    event_.ts_us = now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { close(); }

  void arg(std::string key, std::uint64_t value) {
    if (recorder_ != nullptr) {
      event_.args.emplace_back(std::move(key), value);
    }
  }

  /// Stops the clock and records the event; further calls are no-ops.
  void close() {
    if (recorder_ == nullptr) return;
    event_.dur_us = now_us() - event_.ts_us;
    recorder_->add(std::move(event_));
    recorder_ = nullptr;
  }

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

}  // namespace tls::telemetry
