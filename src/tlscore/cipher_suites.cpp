#include "tlscore/cipher_suites.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

namespace tls::core {

namespace {

using KX = KeyExchange;
using AU = Auth;
using BC = BulkCipher;
using MO = CipherMode;
using MA = MacAlgorithm;

constexpr CipherSuiteInfo row(std::uint16_t id, std::string_view name, KX kx,
                              AU au, BC bc, MO mo, MA ma, std::uint16_t bits,
                              bool scsv = false) {
  return CipherSuiteInfo{id, name, kx, au, bc, mo, ma, bits, scsv};
}

// Registry rows, ascending by id. Attribute data follows the IANA TLS
// Cipher Suites registry.
constexpr CipherSuiteInfo kSuites[] = {
    row(0x0000, "TLS_NULL_WITH_NULL_NULL", KX::kNull, AU::kNone, BC::kNull, MO::kNone, MA::kNull, 0),
    row(0x0001, "TLS_RSA_WITH_NULL_MD5", KX::kRsa, AU::kRsa, BC::kNull, MO::kNone, MA::kMd5, 0),
    row(0x0002, "TLS_RSA_WITH_NULL_SHA", KX::kRsa, AU::kRsa, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0x0003, "TLS_RSA_EXPORT_WITH_RC4_40_MD5", KX::kRsaExport, AU::kRsa, BC::kRc4_40, MO::kStream, MA::kMd5, 40),
    row(0x0004, "TLS_RSA_WITH_RC4_128_MD5", KX::kRsa, AU::kRsa, BC::kRc4_128, MO::kStream, MA::kMd5, 128),
    row(0x0005, "TLS_RSA_WITH_RC4_128_SHA", KX::kRsa, AU::kRsa, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0x0006, "TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5", KX::kRsaExport, AU::kRsa, BC::kRc2_40, MO::kCbc, MA::kMd5, 40),
    row(0x0007, "TLS_RSA_WITH_IDEA_CBC_SHA", KX::kRsa, AU::kRsa, BC::kIdea, MO::kCbc, MA::kSha1, 128),
    row(0x0008, "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA", KX::kRsaExport, AU::kRsa, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x0009, "TLS_RSA_WITH_DES_CBC_SHA", KX::kRsa, AU::kRsa, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x000a, "TLS_RSA_WITH_3DES_EDE_CBC_SHA", KX::kRsa, AU::kRsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x000b, "TLS_DH_DSS_EXPORT_WITH_DES40_CBC_SHA", KX::kDhExport, AU::kDss, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x000c, "TLS_DH_DSS_WITH_DES_CBC_SHA", KX::kDh, AU::kDss, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x000d, "TLS_DH_DSS_WITH_3DES_EDE_CBC_SHA", KX::kDh, AU::kDss, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x000e, "TLS_DH_RSA_EXPORT_WITH_DES40_CBC_SHA", KX::kDhExport, AU::kRsa, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x000f, "TLS_DH_RSA_WITH_DES_CBC_SHA", KX::kDh, AU::kRsa, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x0010, "TLS_DH_RSA_WITH_3DES_EDE_CBC_SHA", KX::kDh, AU::kRsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x0011, "TLS_DHE_DSS_EXPORT_WITH_DES40_CBC_SHA", KX::kDheExport, AU::kDss, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x0012, "TLS_DHE_DSS_WITH_DES_CBC_SHA", KX::kDhe, AU::kDss, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x0013, "TLS_DHE_DSS_WITH_3DES_EDE_CBC_SHA", KX::kDhe, AU::kDss, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x0014, "TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA", KX::kDheExport, AU::kRsa, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x0015, "TLS_DHE_RSA_WITH_DES_CBC_SHA", KX::kDhe, AU::kRsa, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x0016, "TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA", KX::kDhe, AU::kRsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x0017, "TLS_DH_anon_EXPORT_WITH_RC4_40_MD5", KX::kDhAnonExport, AU::kNone, BC::kRc4_40, MO::kStream, MA::kMd5, 40),
    row(0x0018, "TLS_DH_anon_WITH_RC4_128_MD5", KX::kDhAnon, AU::kNone, BC::kRc4_128, MO::kStream, MA::kMd5, 128),
    row(0x0019, "TLS_DH_anon_EXPORT_WITH_DES40_CBC_SHA", KX::kDhAnonExport, AU::kNone, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x001a, "TLS_DH_anon_WITH_DES_CBC_SHA", KX::kDhAnon, AU::kNone, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x001b, "TLS_DH_anon_WITH_3DES_EDE_CBC_SHA", KX::kDhAnon, AU::kNone, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x001e, "TLS_KRB5_WITH_DES_CBC_SHA", KX::kKrb5, AU::kKrb5, BC::kDes, MO::kCbc, MA::kSha1, 56),
    row(0x001f, "TLS_KRB5_WITH_3DES_EDE_CBC_SHA", KX::kKrb5, AU::kKrb5, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x0020, "TLS_KRB5_WITH_RC4_128_SHA", KX::kKrb5, AU::kKrb5, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0x0021, "TLS_KRB5_WITH_IDEA_CBC_SHA", KX::kKrb5, AU::kKrb5, BC::kIdea, MO::kCbc, MA::kSha1, 128),
    row(0x0022, "TLS_KRB5_WITH_DES_CBC_MD5", KX::kKrb5, AU::kKrb5, BC::kDes, MO::kCbc, MA::kMd5, 56),
    row(0x0023, "TLS_KRB5_WITH_3DES_EDE_CBC_MD5", KX::kKrb5, AU::kKrb5, BC::k3Des, MO::kCbc, MA::kMd5, 112),
    row(0x0024, "TLS_KRB5_WITH_RC4_128_MD5", KX::kKrb5, AU::kKrb5, BC::kRc4_128, MO::kStream, MA::kMd5, 128),
    row(0x0026, "TLS_KRB5_EXPORT_WITH_DES_CBC_40_SHA", KX::kKrb5Export, AU::kKrb5, BC::kDes40, MO::kCbc, MA::kSha1, 40),
    row(0x0027, "TLS_KRB5_EXPORT_WITH_RC2_CBC_40_SHA", KX::kKrb5Export, AU::kKrb5, BC::kRc2_40, MO::kCbc, MA::kSha1, 40),
    row(0x0028, "TLS_KRB5_EXPORT_WITH_RC4_40_SHA", KX::kKrb5Export, AU::kKrb5, BC::kRc4_40, MO::kStream, MA::kSha1, 40),
    row(0x002a, "TLS_KRB5_EXPORT_WITH_RC2_CBC_40_MD5", KX::kKrb5Export, AU::kKrb5, BC::kRc2_40, MO::kCbc, MA::kMd5, 40),
    row(0x002b, "TLS_KRB5_EXPORT_WITH_RC4_40_MD5", KX::kKrb5Export, AU::kKrb5, BC::kRc4_40, MO::kStream, MA::kMd5, 40),
    row(0x002c, "TLS_PSK_WITH_NULL_SHA", KX::kPsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0x002d, "TLS_DHE_PSK_WITH_NULL_SHA", KX::kDhePsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0x002e, "TLS_RSA_PSK_WITH_NULL_SHA", KX::kRsaPsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0x002f, "TLS_RSA_WITH_AES_128_CBC_SHA", KX::kRsa, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0030, "TLS_DH_DSS_WITH_AES_128_CBC_SHA", KX::kDh, AU::kDss, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0031, "TLS_DH_RSA_WITH_AES_128_CBC_SHA", KX::kDh, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0032, "TLS_DHE_DSS_WITH_AES_128_CBC_SHA", KX::kDhe, AU::kDss, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0033, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA", KX::kDhe, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0034, "TLS_DH_anon_WITH_AES_128_CBC_SHA", KX::kDhAnon, AU::kNone, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA", KX::kRsa, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x0036, "TLS_DH_DSS_WITH_AES_256_CBC_SHA", KX::kDh, AU::kDss, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x0037, "TLS_DH_RSA_WITH_AES_256_CBC_SHA", KX::kDh, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x0038, "TLS_DHE_DSS_WITH_AES_256_CBC_SHA", KX::kDhe, AU::kDss, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x0039, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA", KX::kDhe, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x003a, "TLS_DH_anon_WITH_AES_256_CBC_SHA", KX::kDhAnon, AU::kNone, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x003b, "TLS_RSA_WITH_NULL_SHA256", KX::kRsa, AU::kRsa, BC::kNull, MO::kNone, MA::kSha256, 0),
    row(0x003c, "TLS_RSA_WITH_AES_128_CBC_SHA256", KX::kRsa, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x003d, "TLS_RSA_WITH_AES_256_CBC_SHA256", KX::kRsa, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha256, 256),
    row(0x003e, "TLS_DH_DSS_WITH_AES_128_CBC_SHA256", KX::kDh, AU::kDss, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x003f, "TLS_DH_RSA_WITH_AES_128_CBC_SHA256", KX::kDh, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x0040, "TLS_DHE_DSS_WITH_AES_128_CBC_SHA256", KX::kDhe, AU::kDss, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x0041, "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA", KX::kRsa, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha1, 128),
    row(0x0042, "TLS_DH_DSS_WITH_CAMELLIA_128_CBC_SHA", KX::kDh, AU::kDss, BC::kCamellia128, MO::kCbc, MA::kSha1, 128),
    row(0x0043, "TLS_DH_RSA_WITH_CAMELLIA_128_CBC_SHA", KX::kDh, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha1, 128),
    row(0x0044, "TLS_DHE_DSS_WITH_CAMELLIA_128_CBC_SHA", KX::kDhe, AU::kDss, BC::kCamellia128, MO::kCbc, MA::kSha1, 128),
    row(0x0045, "TLS_DHE_RSA_WITH_CAMELLIA_128_CBC_SHA", KX::kDhe, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha1, 128),
    row(0x0046, "TLS_DH_anon_WITH_CAMELLIA_128_CBC_SHA", KX::kDhAnon, AU::kNone, BC::kCamellia128, MO::kCbc, MA::kSha1, 128),
    row(0x0066, "TLS_DHE_DSS_WITH_RC4_128_SHA", KX::kDhe, AU::kDss, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0x0067, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256", KX::kDhe, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x0068, "TLS_DH_DSS_WITH_AES_256_CBC_SHA256", KX::kDh, AU::kDss, BC::kAes256, MO::kCbc, MA::kSha256, 256),
    row(0x0069, "TLS_DH_RSA_WITH_AES_256_CBC_SHA256", KX::kDh, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha256, 256),
    row(0x006a, "TLS_DHE_DSS_WITH_AES_256_CBC_SHA256", KX::kDhe, AU::kDss, BC::kAes256, MO::kCbc, MA::kSha256, 256),
    row(0x006b, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256", KX::kDhe, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha256, 256),
    row(0x006c, "TLS_DH_anon_WITH_AES_128_CBC_SHA256", KX::kDhAnon, AU::kNone, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x006d, "TLS_DH_anon_WITH_AES_256_CBC_SHA256", KX::kDhAnon, AU::kNone, BC::kAes256, MO::kCbc, MA::kSha256, 256),
    row(0x0080, "TLS_GOSTR341094_WITH_28147_CNT_IMIT", KX::kGost, AU::kGost, BC::kGost28147, MO::kStream, MA::kGostImit, 256),
    row(0x0081, "TLS_GOSTR341001_WITH_28147_CNT_IMIT", KX::kGost, AU::kGost, BC::kGost28147, MO::kStream, MA::kGostImit, 256),
    row(0x0084, "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA", KX::kRsa, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha1, 256),
    row(0x0085, "TLS_DH_DSS_WITH_CAMELLIA_256_CBC_SHA", KX::kDh, AU::kDss, BC::kCamellia256, MO::kCbc, MA::kSha1, 256),
    row(0x0086, "TLS_DH_RSA_WITH_CAMELLIA_256_CBC_SHA", KX::kDh, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha1, 256),
    row(0x0087, "TLS_DHE_DSS_WITH_CAMELLIA_256_CBC_SHA", KX::kDhe, AU::kDss, BC::kCamellia256, MO::kCbc, MA::kSha1, 256),
    row(0x0088, "TLS_DHE_RSA_WITH_CAMELLIA_256_CBC_SHA", KX::kDhe, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha1, 256),
    row(0x0089, "TLS_DH_anon_WITH_CAMELLIA_256_CBC_SHA", KX::kDhAnon, AU::kNone, BC::kCamellia256, MO::kCbc, MA::kSha1, 256),
    row(0x008a, "TLS_PSK_WITH_RC4_128_SHA", KX::kPsk, AU::kPsk, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0x008b, "TLS_PSK_WITH_3DES_EDE_CBC_SHA", KX::kPsk, AU::kPsk, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x008c, "TLS_PSK_WITH_AES_128_CBC_SHA", KX::kPsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x008d, "TLS_PSK_WITH_AES_256_CBC_SHA", KX::kPsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x008e, "TLS_DHE_PSK_WITH_RC4_128_SHA", KX::kDhePsk, AU::kPsk, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0x008f, "TLS_DHE_PSK_WITH_3DES_EDE_CBC_SHA", KX::kDhePsk, AU::kPsk, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x0090, "TLS_DHE_PSK_WITH_AES_128_CBC_SHA", KX::kDhePsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0091, "TLS_DHE_PSK_WITH_AES_256_CBC_SHA", KX::kDhePsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x0092, "TLS_RSA_PSK_WITH_RC4_128_SHA", KX::kRsaPsk, AU::kPsk, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0x0093, "TLS_RSA_PSK_WITH_3DES_EDE_CBC_SHA", KX::kRsaPsk, AU::kPsk, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0x0094, "TLS_RSA_PSK_WITH_AES_128_CBC_SHA", KX::kRsaPsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0x0095, "TLS_RSA_PSK_WITH_AES_256_CBC_SHA", KX::kRsaPsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0x0096, "TLS_RSA_WITH_SEED_CBC_SHA", KX::kRsa, AU::kRsa, BC::kSeed, MO::kCbc, MA::kSha1, 128),
    row(0x0097, "TLS_DH_DSS_WITH_SEED_CBC_SHA", KX::kDh, AU::kDss, BC::kSeed, MO::kCbc, MA::kSha1, 128),
    row(0x0098, "TLS_DH_RSA_WITH_SEED_CBC_SHA", KX::kDh, AU::kRsa, BC::kSeed, MO::kCbc, MA::kSha1, 128),
    row(0x0099, "TLS_DHE_DSS_WITH_SEED_CBC_SHA", KX::kDhe, AU::kDss, BC::kSeed, MO::kCbc, MA::kSha1, 128),
    row(0x009a, "TLS_DHE_RSA_WITH_SEED_CBC_SHA", KX::kDhe, AU::kRsa, BC::kSeed, MO::kCbc, MA::kSha1, 128),
    row(0x009b, "TLS_DH_anon_WITH_SEED_CBC_SHA", KX::kDhAnon, AU::kNone, BC::kSeed, MO::kCbc, MA::kSha1, 128),
    row(0x009c, "TLS_RSA_WITH_AES_128_GCM_SHA256", KX::kRsa, AU::kRsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x009d, "TLS_RSA_WITH_AES_256_GCM_SHA384", KX::kRsa, AU::kRsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x009e, "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256", KX::kDhe, AU::kRsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x009f, "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384", KX::kDhe, AU::kRsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00a0, "TLS_DH_RSA_WITH_AES_128_GCM_SHA256", KX::kDh, AU::kRsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00a1, "TLS_DH_RSA_WITH_AES_256_GCM_SHA384", KX::kDh, AU::kRsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00a2, "TLS_DHE_DSS_WITH_AES_128_GCM_SHA256", KX::kDhe, AU::kDss, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00a3, "TLS_DHE_DSS_WITH_AES_256_GCM_SHA384", KX::kDhe, AU::kDss, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00a4, "TLS_DH_DSS_WITH_AES_128_GCM_SHA256", KX::kDh, AU::kDss, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00a5, "TLS_DH_DSS_WITH_AES_256_GCM_SHA384", KX::kDh, AU::kDss, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00a6, "TLS_DH_anon_WITH_AES_128_GCM_SHA256", KX::kDhAnon, AU::kNone, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00a7, "TLS_DH_anon_WITH_AES_256_GCM_SHA384", KX::kDhAnon, AU::kNone, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00a8, "TLS_PSK_WITH_AES_128_GCM_SHA256", KX::kPsk, AU::kPsk, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00a9, "TLS_PSK_WITH_AES_256_GCM_SHA384", KX::kPsk, AU::kPsk, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00aa, "TLS_DHE_PSK_WITH_AES_128_GCM_SHA256", KX::kDhePsk, AU::kPsk, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00ab, "TLS_DHE_PSK_WITH_AES_256_GCM_SHA384", KX::kDhePsk, AU::kPsk, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00ac, "TLS_RSA_PSK_WITH_AES_128_GCM_SHA256", KX::kRsaPsk, AU::kPsk, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x00ad, "TLS_RSA_PSK_WITH_AES_256_GCM_SHA384", KX::kRsaPsk, AU::kPsk, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x00ae, "TLS_PSK_WITH_AES_128_CBC_SHA256", KX::kPsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x00af, "TLS_PSK_WITH_AES_256_CBC_SHA384", KX::kPsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0x00b0, "TLS_PSK_WITH_NULL_SHA256", KX::kPsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha256, 0),
    row(0x00b1, "TLS_PSK_WITH_NULL_SHA384", KX::kPsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha384, 0),
    row(0x00b2, "TLS_DHE_PSK_WITH_AES_128_CBC_SHA256", KX::kDhePsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x00b3, "TLS_DHE_PSK_WITH_AES_256_CBC_SHA384", KX::kDhePsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0x00b4, "TLS_DHE_PSK_WITH_NULL_SHA256", KX::kDhePsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha256, 0),
    row(0x00b5, "TLS_DHE_PSK_WITH_NULL_SHA384", KX::kDhePsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha384, 0),
    row(0x00b6, "TLS_RSA_PSK_WITH_AES_128_CBC_SHA256", KX::kRsaPsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0x00b7, "TLS_RSA_PSK_WITH_AES_256_CBC_SHA384", KX::kRsaPsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0x00b8, "TLS_RSA_PSK_WITH_NULL_SHA256", KX::kRsaPsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha256, 0),
    row(0x00b9, "TLS_RSA_PSK_WITH_NULL_SHA384", KX::kRsaPsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha384, 0),
    row(0x00ba, "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA256", KX::kRsa, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0x00bb, "TLS_DH_DSS_WITH_CAMELLIA_128_CBC_SHA256", KX::kDh, AU::kDss, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0x00bc, "TLS_DH_RSA_WITH_CAMELLIA_128_CBC_SHA256", KX::kDh, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0x00bd, "TLS_DHE_DSS_WITH_CAMELLIA_128_CBC_SHA256", KX::kDhe, AU::kDss, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0x00be, "TLS_DHE_RSA_WITH_CAMELLIA_128_CBC_SHA256", KX::kDhe, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0x00bf, "TLS_DH_anon_WITH_CAMELLIA_128_CBC_SHA256", KX::kDhAnon, AU::kNone, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0x00c0, "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA256", KX::kRsa, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha256, 256),
    row(0x00c1, "TLS_DH_DSS_WITH_CAMELLIA_256_CBC_SHA256", KX::kDh, AU::kDss, BC::kCamellia256, MO::kCbc, MA::kSha256, 256),
    row(0x00c2, "TLS_DH_RSA_WITH_CAMELLIA_256_CBC_SHA256", KX::kDh, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha256, 256),
    row(0x00c3, "TLS_DHE_DSS_WITH_CAMELLIA_256_CBC_SHA256", KX::kDhe, AU::kDss, BC::kCamellia256, MO::kCbc, MA::kSha256, 256),
    row(0x00c4, "TLS_DHE_RSA_WITH_CAMELLIA_256_CBC_SHA256", KX::kDhe, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha256, 256),
    row(0x00c5, "TLS_DH_anon_WITH_CAMELLIA_256_CBC_SHA256", KX::kDhAnon, AU::kNone, BC::kCamellia256, MO::kCbc, MA::kSha256, 256),
    row(0x00ff, "TLS_EMPTY_RENEGOTIATION_INFO_SCSV", KX::kNull, AU::kNone, BC::kNull, MO::kNone, MA::kNull, 0, true),
    row(0x1301, "TLS_AES_128_GCM_SHA256", KX::kTls13, AU::kAny, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0x1302, "TLS_AES_256_GCM_SHA384", KX::kTls13, AU::kAny, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0x1303, "TLS_CHACHA20_POLY1305_SHA256", KX::kTls13, AU::kAny, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0x1304, "TLS_AES_128_CCM_SHA256", KX::kTls13, AU::kAny, BC::kAes128, MO::kCcm, MA::kAead, 128),
    row(0x1305, "TLS_AES_128_CCM_8_SHA256", KX::kTls13, AU::kAny, BC::kAes128, MO::kCcm8, MA::kAead, 128),
    row(0x5600, "TLS_FALLBACK_SCSV", KX::kNull, AU::kNone, BC::kNull, MO::kNone, MA::kNull, 0, true),
    row(0xc001, "TLS_ECDH_ECDSA_WITH_NULL_SHA", KX::kEcdh, AU::kEcdsa, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0xc002, "TLS_ECDH_ECDSA_WITH_RC4_128_SHA", KX::kEcdh, AU::kEcdsa, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0xc003, "TLS_ECDH_ECDSA_WITH_3DES_EDE_CBC_SHA", KX::kEcdh, AU::kEcdsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc004, "TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA", KX::kEcdh, AU::kEcdsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc005, "TLS_ECDH_ECDSA_WITH_AES_256_CBC_SHA", KX::kEcdh, AU::kEcdsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc006, "TLS_ECDHE_ECDSA_WITH_NULL_SHA", KX::kEcdhe, AU::kEcdsa, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0xc007, "TLS_ECDHE_ECDSA_WITH_RC4_128_SHA", KX::kEcdhe, AU::kEcdsa, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0xc008, "TLS_ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA", KX::kEcdhe, AU::kEcdsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc009, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA", KX::kEcdhe, AU::kEcdsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc00a, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA", KX::kEcdhe, AU::kEcdsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc00b, "TLS_ECDH_RSA_WITH_NULL_SHA", KX::kEcdh, AU::kRsa, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0xc00c, "TLS_ECDH_RSA_WITH_RC4_128_SHA", KX::kEcdh, AU::kRsa, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0xc00d, "TLS_ECDH_RSA_WITH_3DES_EDE_CBC_SHA", KX::kEcdh, AU::kRsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc00e, "TLS_ECDH_RSA_WITH_AES_128_CBC_SHA", KX::kEcdh, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc00f, "TLS_ECDH_RSA_WITH_AES_256_CBC_SHA", KX::kEcdh, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc010, "TLS_ECDHE_RSA_WITH_NULL_SHA", KX::kEcdhe, AU::kRsa, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0xc011, "TLS_ECDHE_RSA_WITH_RC4_128_SHA", KX::kEcdhe, AU::kRsa, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0xc012, "TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", KX::kEcdhe, AU::kRsa, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", KX::kEcdhe, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA", KX::kEcdhe, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc015, "TLS_ECDH_anon_WITH_NULL_SHA", KX::kEcdhAnon, AU::kNone, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0xc016, "TLS_ECDH_anon_WITH_RC4_128_SHA", KX::kEcdhAnon, AU::kNone, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0xc017, "TLS_ECDH_anon_WITH_3DES_EDE_CBC_SHA", KX::kEcdhAnon, AU::kNone, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc018, "TLS_ECDH_anon_WITH_AES_128_CBC_SHA", KX::kEcdhAnon, AU::kNone, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc019, "TLS_ECDH_anon_WITH_AES_256_CBC_SHA", KX::kEcdhAnon, AU::kNone, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc01a, "TLS_SRP_SHA_WITH_3DES_EDE_CBC_SHA", KX::kSrp, AU::kSrp, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc01b, "TLS_SRP_SHA_RSA_WITH_3DES_EDE_CBC_SHA", KX::kSrp, AU::kSrp, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc01c, "TLS_SRP_SHA_DSS_WITH_3DES_EDE_CBC_SHA", KX::kSrp, AU::kSrp, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc01d, "TLS_SRP_SHA_WITH_AES_128_CBC_SHA", KX::kSrp, AU::kSrp, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc01e, "TLS_SRP_SHA_RSA_WITH_AES_128_CBC_SHA", KX::kSrp, AU::kSrp, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc01f, "TLS_SRP_SHA_DSS_WITH_AES_128_CBC_SHA", KX::kSrp, AU::kSrp, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc020, "TLS_SRP_SHA_WITH_AES_256_CBC_SHA", KX::kSrp, AU::kSrp, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc021, "TLS_SRP_SHA_RSA_WITH_AES_256_CBC_SHA", KX::kSrp, AU::kSrp, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc022, "TLS_SRP_SHA_DSS_WITH_AES_256_CBC_SHA", KX::kSrp, AU::kSrp, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc023, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0xc024, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384", KX::kEcdhe, AU::kEcdsa, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0xc025, "TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA256", KX::kEcdh, AU::kEcdsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0xc026, "TLS_ECDH_ECDSA_WITH_AES_256_CBC_SHA384", KX::kEcdh, AU::kEcdsa, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0xc027, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256", KX::kEcdhe, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0xc028, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384", KX::kEcdhe, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0xc029, "TLS_ECDH_RSA_WITH_AES_128_CBC_SHA256", KX::kEcdh, AU::kRsa, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0xc02a, "TLS_ECDH_RSA_WITH_AES_256_CBC_SHA384", KX::kEcdh, AU::kRsa, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0xc02b, "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0xc02c, "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384", KX::kEcdhe, AU::kEcdsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0xc02d, "TLS_ECDH_ECDSA_WITH_AES_128_GCM_SHA256", KX::kEcdh, AU::kEcdsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0xc02e, "TLS_ECDH_ECDSA_WITH_AES_256_GCM_SHA384", KX::kEcdh, AU::kEcdsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0xc02f, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", KX::kEcdhe, AU::kRsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0xc030, "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384", KX::kEcdhe, AU::kRsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0xc031, "TLS_ECDH_RSA_WITH_AES_128_GCM_SHA256", KX::kEcdh, AU::kRsa, BC::kAes128, MO::kGcm, MA::kAead, 128),
    row(0xc032, "TLS_ECDH_RSA_WITH_AES_256_GCM_SHA384", KX::kEcdh, AU::kRsa, BC::kAes256, MO::kGcm, MA::kAead, 256),
    row(0xc033, "TLS_ECDHE_PSK_WITH_RC4_128_SHA", KX::kEcdhePsk, AU::kPsk, BC::kRc4_128, MO::kStream, MA::kSha1, 128),
    row(0xc034, "TLS_ECDHE_PSK_WITH_3DES_EDE_CBC_SHA", KX::kEcdhePsk, AU::kPsk, BC::k3Des, MO::kCbc, MA::kSha1, 112),
    row(0xc035, "TLS_ECDHE_PSK_WITH_AES_128_CBC_SHA", KX::kEcdhePsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha1, 128),
    row(0xc036, "TLS_ECDHE_PSK_WITH_AES_256_CBC_SHA", KX::kEcdhePsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha1, 256),
    row(0xc037, "TLS_ECDHE_PSK_WITH_AES_128_CBC_SHA256", KX::kEcdhePsk, AU::kPsk, BC::kAes128, MO::kCbc, MA::kSha256, 128),
    row(0xc038, "TLS_ECDHE_PSK_WITH_AES_256_CBC_SHA384", KX::kEcdhePsk, AU::kPsk, BC::kAes256, MO::kCbc, MA::kSha384, 256),
    row(0xc039, "TLS_ECDHE_PSK_WITH_NULL_SHA", KX::kEcdhePsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha1, 0),
    row(0xc03a, "TLS_ECDHE_PSK_WITH_NULL_SHA256", KX::kEcdhePsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha256, 0),
    row(0xc03b, "TLS_ECDHE_PSK_WITH_NULL_SHA384", KX::kEcdhePsk, AU::kPsk, BC::kNull, MO::kNone, MA::kSha384, 0),
    row(0xc03c, "TLS_RSA_WITH_ARIA_128_CBC_SHA256", KX::kRsa, AU::kRsa, BC::kAria128, MO::kCbc, MA::kSha256, 128),
    row(0xc03d, "TLS_RSA_WITH_ARIA_256_CBC_SHA384", KX::kRsa, AU::kRsa, BC::kAria256, MO::kCbc, MA::kSha384, 256),
    row(0xc044, "TLS_DHE_RSA_WITH_ARIA_128_CBC_SHA256", KX::kDhe, AU::kRsa, BC::kAria128, MO::kCbc, MA::kSha256, 128),
    row(0xc045, "TLS_DHE_RSA_WITH_ARIA_256_CBC_SHA384", KX::kDhe, AU::kRsa, BC::kAria256, MO::kCbc, MA::kSha384, 256),
    row(0xc048, "TLS_ECDHE_ECDSA_WITH_ARIA_128_CBC_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kAria128, MO::kCbc, MA::kSha256, 128),
    row(0xc049, "TLS_ECDHE_ECDSA_WITH_ARIA_256_CBC_SHA384", KX::kEcdhe, AU::kEcdsa, BC::kAria256, MO::kCbc, MA::kSha384, 256),
    row(0xc04c, "TLS_ECDHE_RSA_WITH_ARIA_128_CBC_SHA256", KX::kEcdhe, AU::kRsa, BC::kAria128, MO::kCbc, MA::kSha256, 128),
    row(0xc04d, "TLS_ECDHE_RSA_WITH_ARIA_256_CBC_SHA384", KX::kEcdhe, AU::kRsa, BC::kAria256, MO::kCbc, MA::kSha384, 256),
    row(0xc050, "TLS_RSA_WITH_ARIA_128_GCM_SHA256", KX::kRsa, AU::kRsa, BC::kAria128, MO::kGcm, MA::kAead, 128),
    row(0xc051, "TLS_RSA_WITH_ARIA_256_GCM_SHA384", KX::kRsa, AU::kRsa, BC::kAria256, MO::kGcm, MA::kAead, 256),
    row(0xc052, "TLS_DHE_RSA_WITH_ARIA_128_GCM_SHA256", KX::kDhe, AU::kRsa, BC::kAria128, MO::kGcm, MA::kAead, 128),
    row(0xc053, "TLS_DHE_RSA_WITH_ARIA_256_GCM_SHA384", KX::kDhe, AU::kRsa, BC::kAria256, MO::kGcm, MA::kAead, 256),
    row(0xc05c, "TLS_ECDHE_ECDSA_WITH_ARIA_128_GCM_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kAria128, MO::kGcm, MA::kAead, 128),
    row(0xc05d, "TLS_ECDHE_ECDSA_WITH_ARIA_256_GCM_SHA384", KX::kEcdhe, AU::kEcdsa, BC::kAria256, MO::kGcm, MA::kAead, 256),
    row(0xc060, "TLS_ECDHE_RSA_WITH_ARIA_128_GCM_SHA256", KX::kEcdhe, AU::kRsa, BC::kAria128, MO::kGcm, MA::kAead, 128),
    row(0xc061, "TLS_ECDHE_RSA_WITH_ARIA_256_GCM_SHA384", KX::kEcdhe, AU::kRsa, BC::kAria256, MO::kGcm, MA::kAead, 256),
    row(0xc072, "TLS_ECDHE_ECDSA_WITH_CAMELLIA_128_CBC_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0xc073, "TLS_ECDHE_ECDSA_WITH_CAMELLIA_256_CBC_SHA384", KX::kEcdhe, AU::kEcdsa, BC::kCamellia256, MO::kCbc, MA::kSha384, 256),
    row(0xc076, "TLS_ECDHE_RSA_WITH_CAMELLIA_128_CBC_SHA256", KX::kEcdhe, AU::kRsa, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0xc077, "TLS_ECDHE_RSA_WITH_CAMELLIA_256_CBC_SHA384", KX::kEcdhe, AU::kRsa, BC::kCamellia256, MO::kCbc, MA::kSha384, 256),
    row(0xc07a, "TLS_RSA_WITH_CAMELLIA_128_GCM_SHA256", KX::kRsa, AU::kRsa, BC::kCamellia128, MO::kGcm, MA::kAead, 128),
    row(0xc07b, "TLS_RSA_WITH_CAMELLIA_256_GCM_SHA384", KX::kRsa, AU::kRsa, BC::kCamellia256, MO::kGcm, MA::kAead, 256),
    row(0xc07c, "TLS_DHE_RSA_WITH_CAMELLIA_128_GCM_SHA256", KX::kDhe, AU::kRsa, BC::kCamellia128, MO::kGcm, MA::kAead, 128),
    row(0xc07d, "TLS_DHE_RSA_WITH_CAMELLIA_256_GCM_SHA384", KX::kDhe, AU::kRsa, BC::kCamellia256, MO::kGcm, MA::kAead, 256),
    row(0xc086, "TLS_ECDHE_ECDSA_WITH_CAMELLIA_128_GCM_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kCamellia128, MO::kGcm, MA::kAead, 128),
    row(0xc087, "TLS_ECDHE_ECDSA_WITH_CAMELLIA_256_GCM_SHA384", KX::kEcdhe, AU::kEcdsa, BC::kCamellia256, MO::kGcm, MA::kAead, 256),
    row(0xc08a, "TLS_ECDHE_RSA_WITH_CAMELLIA_128_GCM_SHA256", KX::kEcdhe, AU::kRsa, BC::kCamellia128, MO::kGcm, MA::kAead, 128),
    row(0xc08b, "TLS_ECDHE_RSA_WITH_CAMELLIA_256_GCM_SHA384", KX::kEcdhe, AU::kRsa, BC::kCamellia256, MO::kGcm, MA::kAead, 256),
    row(0xc094, "TLS_PSK_WITH_CAMELLIA_128_CBC_SHA256", KX::kPsk, AU::kPsk, BC::kCamellia128, MO::kCbc, MA::kSha256, 128),
    row(0xc095, "TLS_PSK_WITH_CAMELLIA_256_CBC_SHA384", KX::kPsk, AU::kPsk, BC::kCamellia256, MO::kCbc, MA::kSha384, 256),
    row(0xc09c, "TLS_RSA_WITH_AES_128_CCM", KX::kRsa, AU::kRsa, BC::kAes128, MO::kCcm, MA::kAead, 128),
    row(0xc09d, "TLS_RSA_WITH_AES_256_CCM", KX::kRsa, AU::kRsa, BC::kAes256, MO::kCcm, MA::kAead, 256),
    row(0xc09e, "TLS_DHE_RSA_WITH_AES_128_CCM", KX::kDhe, AU::kRsa, BC::kAes128, MO::kCcm, MA::kAead, 128),
    row(0xc09f, "TLS_DHE_RSA_WITH_AES_256_CCM", KX::kDhe, AU::kRsa, BC::kAes256, MO::kCcm, MA::kAead, 256),
    row(0xc0a0, "TLS_RSA_WITH_AES_128_CCM_8", KX::kRsa, AU::kRsa, BC::kAes128, MO::kCcm8, MA::kAead, 128),
    row(0xc0a1, "TLS_RSA_WITH_AES_256_CCM_8", KX::kRsa, AU::kRsa, BC::kAes256, MO::kCcm8, MA::kAead, 256),
    row(0xc0a2, "TLS_DHE_RSA_WITH_AES_128_CCM_8", KX::kDhe, AU::kRsa, BC::kAes128, MO::kCcm8, MA::kAead, 128),
    row(0xc0a3, "TLS_DHE_RSA_WITH_AES_256_CCM_8", KX::kDhe, AU::kRsa, BC::kAes256, MO::kCcm8, MA::kAead, 256),
    row(0xc0a4, "TLS_PSK_WITH_AES_128_CCM", KX::kPsk, AU::kPsk, BC::kAes128, MO::kCcm, MA::kAead, 128),
    row(0xc0a5, "TLS_PSK_WITH_AES_256_CCM", KX::kPsk, AU::kPsk, BC::kAes256, MO::kCcm, MA::kAead, 256),
    row(0xc0a6, "TLS_DHE_PSK_WITH_AES_128_CCM", KX::kDhePsk, AU::kPsk, BC::kAes128, MO::kCcm, MA::kAead, 128),
    row(0xc0a7, "TLS_DHE_PSK_WITH_AES_256_CCM", KX::kDhePsk, AU::kPsk, BC::kAes256, MO::kCcm, MA::kAead, 256),
    row(0xc0a8, "TLS_PSK_WITH_AES_128_CCM_8", KX::kPsk, AU::kPsk, BC::kAes128, MO::kCcm8, MA::kAead, 128),
    row(0xc0a9, "TLS_PSK_WITH_AES_256_CCM_8", KX::kPsk, AU::kPsk, BC::kAes256, MO::kCcm8, MA::kAead, 256),
    row(0xc0aa, "TLS_PSK_DHE_WITH_AES_128_CCM_8", KX::kDhePsk, AU::kPsk, BC::kAes128, MO::kCcm8, MA::kAead, 128),
    row(0xc0ab, "TLS_PSK_DHE_WITH_AES_256_CCM_8", KX::kDhePsk, AU::kPsk, BC::kAes256, MO::kCcm8, MA::kAead, 256),
    row(0xc0ac, "TLS_ECDHE_ECDSA_WITH_AES_128_CCM", KX::kEcdhe, AU::kEcdsa, BC::kAes128, MO::kCcm, MA::kAead, 128),
    row(0xc0ad, "TLS_ECDHE_ECDSA_WITH_AES_256_CCM", KX::kEcdhe, AU::kEcdsa, BC::kAes256, MO::kCcm, MA::kAead, 256),
    row(0xc0ae, "TLS_ECDHE_ECDSA_WITH_AES_128_CCM_8", KX::kEcdhe, AU::kEcdsa, BC::kAes128, MO::kCcm8, MA::kAead, 128),
    row(0xc0af, "TLS_ECDHE_ECDSA_WITH_AES_256_CCM_8", KX::kEcdhe, AU::kEcdsa, BC::kAes256, MO::kCcm8, MA::kAead, 256),
    row(0xcca8, "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", KX::kEcdhe, AU::kRsa, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xcca9, "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256", KX::kEcdhe, AU::kEcdsa, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xccaa, "TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256", KX::kDhe, AU::kRsa, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xccab, "TLS_PSK_WITH_CHACHA20_POLY1305_SHA256", KX::kPsk, AU::kPsk, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xccac, "TLS_ECDHE_PSK_WITH_CHACHA20_POLY1305_SHA256", KX::kEcdhePsk, AU::kPsk, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xccad, "TLS_DHE_PSK_WITH_CHACHA20_POLY1305_SHA256", KX::kDhePsk, AU::kPsk, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xccae, "TLS_RSA_PSK_WITH_CHACHA20_POLY1305_SHA256", KX::kRsaPsk, AU::kPsk, BC::kChaCha20, MO::kPoly1305, MA::kAead, 256),
    row(0xff85, "TLS_GOSTR341112_256_WITH_28147_CNT_IMIT", KX::kGost, AU::kGost, BC::kGost28147, MO::kStream, MA::kGostImit, 256),
};

const std::unordered_map<std::uint16_t, const CipherSuiteInfo*>& id_index() {
  static const auto* index = [] {
    auto* m = new std::unordered_map<std::uint16_t, const CipherSuiteInfo*>();
    m->reserve(std::size(kSuites));
    for (const auto& s : kSuites) m->emplace(s.id, &s);
    return m;
  }();
  return *index;
}

const std::unordered_map<std::string_view, const CipherSuiteInfo*>&
name_index() {
  static const auto* index = [] {
    auto* m =
        new std::unordered_map<std::string_view, const CipherSuiteInfo*>();
    m->reserve(std::size(kSuites));
    for (const auto& s : kSuites) m->emplace(s.name, &s);
    return m;
  }();
  return *index;
}

}  // namespace

std::span<const CipherSuiteInfo> all_cipher_suites() { return kSuites; }

const CipherSuiteInfo* find_cipher_suite(std::uint16_t id) {
  const auto& idx = id_index();
  const auto it = idx.find(id);
  return it == idx.end() ? nullptr : it->second;
}

const CipherSuiteInfo* find_cipher_suite(std::string_view name) {
  const auto& idx = name_index();
  const auto it = idx.find(name);
  return it == idx.end() ? nullptr : it->second;
}

bool is_aead(const CipherSuiteInfo& s) {
  return s.mode == MO::kGcm || s.mode == MO::kCcm || s.mode == MO::kCcm8 ||
         s.mode == MO::kPoly1305;
}

bool is_cbc(const CipherSuiteInfo& s) { return s.mode == MO::kCbc; }

bool is_rc4(const CipherSuiteInfo& s) {
  return s.cipher == BC::kRc4_40 || s.cipher == BC::kRc4_56 ||
         s.cipher == BC::kRc4_128;
}

bool is_single_des(const CipherSuiteInfo& s) {
  return s.cipher == BC::kDes || s.cipher == BC::kDes40;
}

bool is_3des(const CipherSuiteInfo& s) { return s.cipher == BC::k3Des; }

bool is_export(const CipherSuiteInfo& s) {
  switch (s.kex) {
    case KX::kRsaExport:
    case KX::kDhExport:
    case KX::kDheExport:
    case KX::kDhAnonExport:
    case KX::kKrb5Export:
      return true;
    default:
      break;
  }
  return s.key_bits != 0 && s.key_bits <= 40;
}

bool is_anonymous(const CipherSuiteInfo& s) {
  return (s.kex == KX::kDhAnon || s.kex == KX::kDhAnonExport ||
          s.kex == KX::kEcdhAnon) &&
         !s.scsv;
}

bool is_null_cipher(const CipherSuiteInfo& s) {
  return s.cipher == BC::kNull && !s.scsv;
}

bool is_null_with_null_null(const CipherSuiteInfo& s) { return s.id == 0x0000; }

bool is_forward_secret(const CipherSuiteInfo& s) {
  switch (s.kex) {
    case KX::kDhe:
    case KX::kDheExport:
    case KX::kDhAnon:
    case KX::kDhAnonExport:
    case KX::kEcdhe:
    case KX::kEcdhAnon:
    case KX::kDhePsk:
    case KX::kEcdhePsk:
    case KX::kTls13:
      return true;
    default:
      return false;
  }
}

CipherClass cipher_class(const CipherSuiteInfo& s) {
  if (s.scsv) return CipherClass::kOther;
  if (is_aead(s)) return CipherClass::kAead;
  if (is_cbc(s)) return CipherClass::kCbc;
  if (is_rc4(s)) return CipherClass::kRc4;
  if (is_null_cipher(s)) return CipherClass::kNullCipher;
  return CipherClass::kOther;
}

CipherClass cipher_class(std::uint16_t id) {
  const auto* s = find_cipher_suite(id);
  return s ? cipher_class(*s) : CipherClass::kOther;
}

std::string_view cipher_class_name(CipherClass c) {
  switch (c) {
    case CipherClass::kAead: return "AEAD";
    case CipherClass::kCbc: return "CBC";
    case CipherClass::kRc4: return "RC4";
    case CipherClass::kNullCipher: return "NULL";
    case CipherClass::kOther: return "Other";
  }
  return "?";
}

KexClass kex_class(const CipherSuiteInfo& s) {
  switch (s.kex) {
    case KX::kRsa:
    case KX::kRsaExport:
      return KexClass::kRsa;
    case KX::kDhe:
    case KX::kDheExport:
      return KexClass::kDhe;
    case KX::kEcdhe:
      return KexClass::kEcdhe;
    case KX::kDh:
    case KX::kDhExport:
      return KexClass::kDhStatic;
    case KX::kEcdh:
      return KexClass::kEcdhStatic;
    case KX::kDhAnon:
    case KX::kDhAnonExport:
    case KX::kEcdhAnon:
      return KexClass::kAnon;
    case KX::kPsk:
    case KX::kDhePsk:
    case KX::kRsaPsk:
    case KX::kEcdhePsk:
      return KexClass::kPskFamily;
    case KX::kTls13:
      return KexClass::kTls13;
    default:
      return KexClass::kOther;
  }
}

KexClass kex_class(std::uint16_t id) {
  const auto* s = find_cipher_suite(id);
  return s ? kex_class(*s) : KexClass::kOther;
}

std::string_view kex_class_name(KexClass c) {
  switch (c) {
    case KexClass::kRsa: return "RSA";
    case KexClass::kDhe: return "DHE";
    case KexClass::kEcdhe: return "ECDHE";
    case KexClass::kDhStatic: return "DH";
    case KexClass::kEcdhStatic: return "ECDH";
    case KexClass::kAnon: return "Anon";
    case KexClass::kPskFamily: return "PSK";
    case KexClass::kTls13: return "TLS1.3";
    case KexClass::kOther: return "Other";
  }
  return "?";
}

AeadKind aead_kind(const CipherSuiteInfo& s) {
  if (!is_aead(s)) return AeadKind::kNotAead;
  if (s.mode == MO::kPoly1305) return AeadKind::kChaCha20Poly1305;
  if (s.mode == MO::kCcm || s.mode == MO::kCcm8) return AeadKind::kAesCcm;
  if (s.cipher == BC::kAes128) return AeadKind::kAes128Gcm;
  if (s.cipher == BC::kAes256) return AeadKind::kAes256Gcm;
  return AeadKind::kOtherAead;  // ARIA-GCM / Camellia-GCM
}

AeadKind aead_kind(std::uint16_t id) {
  const auto* s = find_cipher_suite(id);
  return s ? aead_kind(*s) : AeadKind::kNotAead;
}

}  // namespace tls::core
