// IANA TLS cipher-suite registry with the structural attributes the study
// classifies on: key exchange, authentication, bulk cipher, mode, MAC,
// key bits. Every classification used by the paper's figures (RC4/CBC/AEAD,
// export, anonymous, NULL, forward secrecy, kex family, AEAD kind) is
// derived from these attributes — never from string matching on names.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace tls::core {

enum class KeyExchange : std::uint8_t {
  kNull,        // TLS_NULL_WITH_NULL_NULL
  kRsa,         // RSA key transport
  kRsaExport,   // 512-bit export RSA key transport
  kDh,          // static DH (certified DH key)
  kDhExport,
  kDhe,         // ephemeral finite-field DH
  kDheExport,
  kDhAnon,      // anonymous (unauthenticated) DH
  kDhAnonExport,
  kEcdh,        // static ECDH
  kEcdhe,       // ephemeral ECDH
  kEcdhAnon,    // anonymous ECDH
  kPsk,
  kDhePsk,
  kRsaPsk,
  kEcdhePsk,
  kSrp,
  kKrb5,
  kKrb5Export,
  kGost,
  kTls13,       // TLS 1.3 suites: kex is negotiated separately (always FS)
};

enum class Auth : std::uint8_t {
  kNone,   // anonymous
  kRsa,
  kDss,
  kEcdsa,
  kPsk,
  kSrp,
  kKrb5,
  kGost,
  kAny,    // TLS 1.3: authentication decoupled from the suite
};

enum class BulkCipher : std::uint8_t {
  kNull,
  kRc2_40,
  kRc4_40,
  kRc4_56,
  kRc4_128,
  kDes40,
  kDes,
  k3Des,
  kIdea,
  kSeed,
  kAes128,
  kAes256,
  kCamellia128,
  kCamellia256,
  kAria128,
  kAria256,
  kChaCha20,
  kGost28147,
};

enum class CipherMode : std::uint8_t {
  kNone,     // NULL cipher
  kStream,   // RC4, GOST CNT
  kCbc,
  kGcm,
  kCcm,
  kCcm8,
  kPoly1305,
};

enum class MacAlgorithm : std::uint8_t {
  kNull,
  kMd5,
  kSha1,
  kSha256,
  kSha384,
  kAead,      // integrity provided by the AEAD mode itself
  kGostImit,
};

/// Static description of one registered cipher suite (or SCSV).
struct CipherSuiteInfo {
  std::uint16_t id = 0;
  std::string_view name;
  KeyExchange kex = KeyExchange::kNull;
  Auth auth = Auth::kNone;
  BulkCipher cipher = BulkCipher::kNull;
  CipherMode mode = CipherMode::kNone;
  MacAlgorithm mac = MacAlgorithm::kNull;
  std::uint16_t key_bits = 0;  // effective symmetric key strength
  bool scsv = false;           // signalling value, not a real suite
};

/// All registry entries, ascending by id.
std::span<const CipherSuiteInfo> all_cipher_suites();

/// Lookup by wire id; nullptr when unknown (GREASE or unregistered).
const CipherSuiteInfo* find_cipher_suite(std::uint16_t id);

/// Lookup by IANA name; nullptr when unknown.
const CipherSuiteInfo* find_cipher_suite(std::string_view name);

// ---- Derived classifications used throughout the study ----

/// AEAD = GCM, CCM, CCM_8 or Poly1305 mode (paper Figs. 2, 3, 4, 9, 10).
bool is_aead(const CipherSuiteInfo& s);
bool is_cbc(const CipherSuiteInfo& s);
bool is_rc4(const CipherSuiteInfo& s);
bool is_single_des(const CipherSuiteInfo& s);  // DES / DES40, not 3DES
bool is_3des(const CipherSuiteInfo& s);
/// Export-grade key exchange or 40-bit cipher (FREAK/Logjam surface, §5.5).
bool is_export(const CipherSuiteInfo& s);
/// Unauthenticated key establishment (DH_anon / ECDH_anon, §6.2).
bool is_anonymous(const CipherSuiteInfo& s);
/// NULL bulk cipher: integrity only, no confidentiality (§6.1).
bool is_null_cipher(const CipherSuiteInfo& s);
/// Both integrity and confidentiality absent (TLS_NULL_WITH_NULL_NULL).
bool is_null_with_null_null(const CipherSuiteInfo& s);
/// Ephemeral key exchange ⇒ forward secrecy (§6.3.1). TLS 1.3 is always FS.
bool is_forward_secret(const CipherSuiteInfo& s);

/// Encryption-mode class for Figures 2/3/4. NULL and unknown map to kOther.
enum class CipherClass : std::uint8_t { kAead, kCbc, kRc4, kNullCipher, kOther };
/// Number of CipherClass values (for enum-indexed counter arrays).
inline constexpr std::size_t kCipherClassCount = 5;
CipherClass cipher_class(const CipherSuiteInfo& s);
/// Classifies a raw id; unknown/GREASE ids yield kOther.
CipherClass cipher_class(std::uint16_t id);
std::string_view cipher_class_name(CipherClass c);

/// Key-exchange family for Figure 8.
enum class KexClass : std::uint8_t {
  kRsa, kDhe, kEcdhe, kDhStatic, kEcdhStatic, kAnon, kPskFamily, kTls13, kOther
};
/// Number of KexClass values (for enum-indexed counter arrays).
inline constexpr std::size_t kKexClassCount = 9;
KexClass kex_class(const CipherSuiteInfo& s);
KexClass kex_class(std::uint16_t id);
std::string_view kex_class_name(KexClass c);

/// AEAD scheme breakdown for Figures 9/10.
enum class AeadKind : std::uint8_t {
  kAes128Gcm, kAes256Gcm, kChaCha20Poly1305, kAesCcm,
  kOtherAead,  // ARIA-GCM / Camellia-GCM
  kNotAead
};
/// Number of AeadKind values (for enum-indexed counter arrays).
inline constexpr std::size_t kAeadKindCount = 6;
AeadKind aead_kind(const CipherSuiteInfo& s);
AeadKind aead_kind(std::uint16_t id);

/// Well-known ids used throughout tests, benches and client catalogs.
namespace suites {
inline constexpr std::uint16_t TLS_NULL_WITH_NULL_NULL = 0x0000;
inline constexpr std::uint16_t TLS_RSA_EXPORT_WITH_RC4_40_MD5 = 0x0003;
inline constexpr std::uint16_t TLS_RSA_WITH_RC4_128_MD5 = 0x0004;
inline constexpr std::uint16_t TLS_RSA_WITH_RC4_128_SHA = 0x0005;
inline constexpr std::uint16_t TLS_RSA_WITH_DES_CBC_SHA = 0x0009;
inline constexpr std::uint16_t TLS_RSA_WITH_3DES_EDE_CBC_SHA = 0x000a;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_DES_CBC_SHA = 0x0015;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA = 0x0016;
inline constexpr std::uint16_t TLS_DH_anon_WITH_RC4_128_MD5 = 0x0018;
inline constexpr std::uint16_t TLS_DH_anon_WITH_3DES_EDE_CBC_SHA = 0x001b;
inline constexpr std::uint16_t TLS_RSA_WITH_AES_128_CBC_SHA = 0x002f;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_AES_128_CBC_SHA = 0x0033;
inline constexpr std::uint16_t TLS_DH_anon_WITH_AES_128_CBC_SHA = 0x0034;
inline constexpr std::uint16_t TLS_RSA_WITH_AES_256_CBC_SHA = 0x0035;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_AES_256_CBC_SHA = 0x0039;
inline constexpr std::uint16_t TLS_RSA_WITH_NULL_SHA256 = 0x003b;
inline constexpr std::uint16_t TLS_RSA_WITH_AES_128_CBC_SHA256 = 0x003c;
inline constexpr std::uint16_t TLS_RSA_WITH_AES_256_CBC_SHA256 = 0x003d;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_AES_128_CBC_SHA256 = 0x0067;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_AES_256_CBC_SHA256 = 0x006b;
inline constexpr std::uint16_t TLS_RSA_WITH_NULL_SHA = 0x0002;
inline constexpr std::uint16_t TLS_RSA_WITH_NULL_MD5 = 0x0001;
inline constexpr std::uint16_t TLS_RSA_WITH_AES_128_GCM_SHA256 = 0x009c;
inline constexpr std::uint16_t TLS_RSA_WITH_AES_256_GCM_SHA384 = 0x009d;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_AES_128_GCM_SHA256 = 0x009e;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_AES_256_GCM_SHA384 = 0x009f;
inline constexpr std::uint16_t TLS_EMPTY_RENEGOTIATION_INFO_SCSV = 0x00ff;
inline constexpr std::uint16_t TLS_AES_128_GCM_SHA256 = 0x1301;
inline constexpr std::uint16_t TLS_AES_256_GCM_SHA384 = 0x1302;
inline constexpr std::uint16_t TLS_CHACHA20_POLY1305_SHA256 = 0x1303;
inline constexpr std::uint16_t TLS_AES_128_CCM_SHA256 = 0x1304;
inline constexpr std::uint16_t TLS_FALLBACK_SCSV = 0x5600;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_RC4_128_SHA = 0xc007;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA = 0xc009;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA = 0xc00a;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_RC4_128_SHA = 0xc011;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA = 0xc012;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA = 0xc013;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA = 0xc014;
inline constexpr std::uint16_t TLS_ECDH_anon_WITH_AES_128_CBC_SHA = 0xc018;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256 = 0xc023;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384 = 0xc024;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256 = 0xc027;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384 = 0xc028;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 = 0xc02b;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 = 0xc02c;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 = 0xc02f;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384 = 0xc030;
inline constexpr std::uint16_t TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256 = 0xcca8;
inline constexpr std::uint16_t TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256 = 0xcca9;
inline constexpr std::uint16_t TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256 = 0xccaa;
inline constexpr std::uint16_t TLS_GOSTR341001_WITH_28147_CNT_IMIT = 0x0081;
}  // namespace suites

}  // namespace tls::core
