#include "tlscore/dates.hpp"

#include <cstdio>
#include <stdexcept>

namespace tls::core {

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) {
    throw std::invalid_argument("month out of range: " + std::to_string(month));
  }
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

Date::Date(int year, int month, int day)
    : year_(static_cast<std::int16_t>(year)),
      month_(static_cast<std::int8_t>(month)),
      day_(static_cast<std::int8_t>(day)) {
  if (year < -9999 || year > 9999) {
    throw std::invalid_argument("year out of range");
  }
  if (month < 1 || month > 12) {
    throw std::invalid_argument("month out of range");
  }
  if (day < 1 || day > days_in_month(year, month)) {
    throw std::invalid_argument("day out of range");
  }
}

Date Date::parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char tail = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail) != 3) {
    throw std::invalid_argument("bad date: " + text);
  }
  return Date(y, m, d);
}

// Howard Hinnant's civil-days algorithm.
std::int64_t Date::to_days() const {
  int y = year_;
  const unsigned m = static_cast<unsigned>(month_);
  const unsigned d = static_cast<unsigned>(day_);
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date Date::from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return Date(static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(d));
}

std::string Date::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year(), month(), day());
  return buf;
}

Month::Month(int year, int month) {
  if (month < 1 || month > 12) {
    throw std::invalid_argument("month out of range");
  }
  index_ = year * 12 + (month - 1);
}

Month Month::parse(const std::string& text) {
  int y = 0, m = 0;
  char tail = 0;
  if (std::sscanf(text.c_str(), "%d-%d%c", &y, &m, &tail) != 2) {
    throw std::invalid_argument("bad month: " + text);
  }
  return Month(y, m);
}

std::string Month::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", year(), month());
  return buf;
}

MonthRange notary_window() { return {Month(2012, 2), Month(2018, 4)}; }
MonthRange censys_window() { return {Month(2015, 8), Month(2018, 5)}; }

}  // namespace tls::core
