// Calendar utilities for the longitudinal study.
//
// The paper's figures are monthly time series spanning 2012-01 .. 2018-05.
// We model calendar time as a Month (a linear month index) plus a civil
// Date for event anchors (attack disclosure dates, browser release dates).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace tls::core {

/// A civil calendar date (proleptic Gregorian). Validated on construction.
class Date {
 public:
  constexpr Date() = default;
  /// Constructs a date; throws std::invalid_argument on an invalid civil date.
  Date(int year, int month, int day);

  /// Parses "YYYY-MM-DD". Throws std::invalid_argument on malformed input.
  static Date parse(const std::string& text);

  [[nodiscard]] int year() const { return year_; }
  [[nodiscard]] int month() const { return month_; }
  [[nodiscard]] int day() const { return day_; }

  /// Days since 1970-01-01 (can be negative).
  [[nodiscard]] std::int64_t to_days() const;
  static Date from_days(std::int64_t days);

  [[nodiscard]] std::string to_string() const;  // "YYYY-MM-DD"

  friend auto operator<=>(const Date&, const Date&) = default;

 private:
  std::int16_t year_ = 1970;
  std::int8_t month_ = 1;
  std::int8_t day_ = 1;
};

/// Number of days in a civil month.
int days_in_month(int year, int month);
bool is_leap_year(int year);

/// A month in the study timeline, stored as a linear index
/// (year * 12 + (month - 1)) so that arithmetic and ranges are trivial.
class Month {
 public:
  constexpr Month() = default;
  Month(int year, int month);
  explicit Month(const Date& d) : Month(d.year(), d.month()) {}

  /// Parses "YYYY-MM". Throws std::invalid_argument on malformed input.
  static Month parse(const std::string& text);

  [[nodiscard]] int year() const { return index_ / 12; }
  [[nodiscard]] int month() const { return index_ % 12 + 1; }
  [[nodiscard]] int index() const { return index_; }

  /// First day of the month as a Date.
  [[nodiscard]] Date first_day() const { return Date(year(), month(), 1); }

  [[nodiscard]] std::string to_string() const;  // "YYYY-MM"

  Month& operator++() { ++index_; return *this; }
  Month operator++(int) { Month m = *this; ++index_; return m; }
  Month& operator+=(int n) { index_ += n; return *this; }
  friend Month operator+(Month m, int n) { m += n; return m; }
  friend int operator-(const Month& a, const Month& b) { return a.index_ - b.index_; }

  friend auto operator<=>(const Month&, const Month&) = default;

 private:
  int index_ = 1970 * 12;
};

/// Inclusive month range [begin, end]; iterable in for-loops via months().
struct MonthRange {
  Month begin_month;
  Month end_month;

  [[nodiscard]] int size() const { return end_month - begin_month + 1; }
  [[nodiscard]] bool contains(Month m) const {
    return begin_month <= m && m <= end_month;
  }
};

/// The paper's passive-measurement window (Notary): 2012-02 .. 2018-04.
MonthRange notary_window();
/// The paper's active-scan window (Censys): 2015-08 .. 2018-05.
MonthRange censys_window();

}  // namespace tls::core
