#include "tlscore/extensions.hpp"

#include <unordered_map>

namespace tls::core {

namespace {

constexpr ExtensionInfo kExtensions[] = {
    {0, "server_name", true},
    {1, "max_fragment_length", true},
    {2, "client_certificate_url", true},
    {3, "trusted_ca_keys", true},
    {4, "truncated_hmac", true},
    {5, "status_request", true},
    {6, "user_mapping", true},
    {7, "client_authz", true},
    {8, "server_authz", true},
    {9, "cert_type", true},
    {10, "supported_groups", true},
    {11, "ec_point_formats", true},
    {12, "srp", true},
    {13, "signature_algorithms", true},
    {14, "use_srtp", true},
    {15, "heartbeat", true},
    {16, "application_layer_protocol_negotiation", true},
    {17, "status_request_v2", true},
    {18, "signed_certificate_timestamp", true},
    {19, "client_certificate_type", true},
    {20, "server_certificate_type", true},
    {21, "padding", true},
    {22, "encrypt_then_mac", true},
    {23, "extended_master_secret", true},
    {24, "token_binding", true},
    {25, "cached_info", true},
    {27, "compress_certificate", true},
    {28, "record_size_limit", true},
    {35, "session_ticket", true},
    {41, "pre_shared_key", true},
    {42, "early_data", true},
    {43, "supported_versions", true},
    {44, "cookie", true},
    {45, "psk_key_exchange_modes", true},
    {47, "certificate_authorities", true},
    {49, "post_handshake_auth", true},
    {50, "signature_algorithms_cert", true},
    {51, "key_share", true},
    {13172, "next_protocol_negotiation", false},
    {17513, "application_settings", false},
    {30032, "channel_id", false},
    {65281, "renegotiation_info", true},
};

const std::unordered_map<std::uint16_t, const ExtensionInfo*>& index() {
  static const auto* idx = [] {
    auto* m = new std::unordered_map<std::uint16_t, const ExtensionInfo*>();
    for (const auto& e : kExtensions) m->emplace(e.id, &e);
    return m;
  }();
  return *idx;
}

}  // namespace

std::span<const ExtensionInfo> all_extensions() { return kExtensions; }

const ExtensionInfo* find_extension(std::uint16_t id) {
  const auto it = index().find(id);
  return it == index().end() ? nullptr : it->second;
}

std::string extension_name(std::uint16_t id) {
  if (const auto* e = find_extension(id)) return std::string(e->name);
  return "ext_" + std::to_string(id);
}

}  // namespace tls::core
