// IANA TLS ExtensionType registry (the 28 extensions standardized as of the
// study, per §2.1, plus the TLS 1.3 handshake extensions and the
// renegotiation_info value). The Heartbeat (§5.4), supported_versions
// (§6.4), encrypt_then_mac and renegotiation_info (§9) extensions are the
// ones the paper analyzes directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace tls::core {

enum class ExtensionType : std::uint16_t {
  kServerName = 0,
  kMaxFragmentLength = 1,
  kClientCertificateUrl = 2,
  kTrustedCaKeys = 3,
  kTruncatedHmac = 4,
  kStatusRequest = 5,
  kUserMapping = 6,
  kClientAuthz = 7,
  kServerAuthz = 8,
  kCertType = 9,
  kSupportedGroups = 10,  // formerly "elliptic_curves"
  kEcPointFormats = 11,
  kSrp = 12,
  kSignatureAlgorithms = 13,
  kUseSrtp = 14,
  kHeartbeat = 15,
  kAlpn = 16,
  kStatusRequestV2 = 17,
  kSignedCertificateTimestamp = 18,
  kClientCertificateType = 19,
  kServerCertificateType = 20,
  kPadding = 21,
  kEncryptThenMac = 22,
  kExtendedMasterSecret = 23,
  kTokenBinding = 24,
  kCachedInfo = 25,
  kCompressCertificate = 27,
  kRecordSizeLimit = 28,
  kSessionTicket = 35,
  kPreSharedKey = 41,
  kEarlyData = 42,
  kSupportedVersions = 43,
  kCookie = 44,
  kPskKeyExchangeModes = 45,
  kCertificateAuthorities = 47,
  kPostHandshakeAuth = 49,
  kSignatureAlgorithmsCert = 50,
  kKeyShare = 51,
  kNextProtocolNegotiation = 13172,  // Google NPN (unofficial)
  kApplicationSettings = 17513,
  kChannelId = 30032,  // Google Channel ID (unofficial)
  kRenegotiationInfo = 65281,
};

struct ExtensionInfo {
  std::uint16_t id;
  std::string_view name;
  bool iana_registered;  // false for vendor extensions (NPN, Channel ID)
};

/// All known extensions, ascending by id.
std::span<const ExtensionInfo> all_extensions();

/// Lookup; nullptr for unknown / GREASE ids.
const ExtensionInfo* find_extension(std::uint16_t id);

/// Name for display; unknown ids render as "ext_<id>".
std::string extension_name(std::uint16_t id);

constexpr std::uint16_t wire_value(ExtensionType t) {
  return static_cast<std::uint16_t>(t);
}

}  // namespace tls::core
