#include "tlscore/grease.hpp"
// Header-only; this TU exists so the target always has the symbol anchor.
