// GREASE (RFC 8701, draft-ietf-tls-grease at study time): reserved values
// Chrome injects into cipher-suite, extension, group and version lists to
// keep servers tolerant of unknown values. The paper strips these before
// fingerprinting (§4).
#pragma once

#include <array>
#include <cstdint>

namespace tls::core {

/// The 16 reserved GREASE values: 0x0a0a, 0x1a1a, ..., 0xfafa.
constexpr std::array<std::uint16_t, 16> grease_values() {
  std::array<std::uint16_t, 16> v{};
  for (int i = 0; i < 16; ++i) {
    const auto b = static_cast<std::uint16_t>(i * 16 + 0x0a);
    v[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(b << 8 | b);
  }
  return v;
}

/// True if `value` is one of the 16 reserved GREASE code points.
constexpr bool is_grease(std::uint16_t value) {
  return (value & 0x0f0f) == 0x0a0a && (value >> 8) == (value & 0xff);
}

/// GREASE single-byte values used in ec_point_formats-like byte lists
/// are not defined; only 16-bit code points are GREASEd.
static_assert(is_grease(0x0a0a) && is_grease(0xfafa) && !is_grease(0x0a1a));

}  // namespace tls::core
