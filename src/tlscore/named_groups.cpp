#include "tlscore/named_groups.hpp"

#include <unordered_map>

namespace tls::core {

namespace {

constexpr NamedGroupInfo kGroups[] = {
    {1, "sect163k1", true, 80},
    {3, "sect163r2", true, 80},
    {6, "sect233k1", true, 112},
    {7, "sect233r1", true, 112},
    {9, "sect283k1", true, 128},
    {10, "sect283r1", true, 128},
    {11, "sect409k1", true, 192},
    {12, "sect409r1", true, 192},
    {13, "sect571k1", true, 256},
    {14, "sect571r1", true, 256},
    {16, "secp160r1", true, 80},
    {18, "secp192k1", true, 96},
    {19, "secp192r1", true, 96},
    {20, "secp224k1", true, 112},
    {21, "secp224r1", true, 112},
    {22, "secp256k1", true, 128},
    {23, "secp256r1", true, 128},
    {24, "secp384r1", true, 192},
    {25, "secp521r1", true, 256},
    {26, "brainpoolP256r1", true, 128},
    {27, "brainpoolP384r1", true, 192},
    {28, "brainpoolP512r1", true, 256},
    {29, "x25519", true, 128},
    {30, "x448", true, 224},
    {256, "ffdhe2048", false, 103},
    {257, "ffdhe3072", false, 125},
    {258, "ffdhe4096", false, 150},
};

const std::unordered_map<std::uint16_t, const NamedGroupInfo*>& index() {
  static const auto* idx = [] {
    auto* m = new std::unordered_map<std::uint16_t, const NamedGroupInfo*>();
    for (const auto& g : kGroups) m->emplace(g.id, &g);
    return m;
  }();
  return *idx;
}

}  // namespace

std::span<const NamedGroupInfo> all_named_groups() { return kGroups; }

const NamedGroupInfo* find_named_group(std::uint16_t id) {
  const auto it = index().find(id);
  return it == index().end() ? nullptr : it->second;
}

std::string named_group_name(std::uint16_t id) {
  if (const auto* g = find_named_group(id)) return std::string(g->name);
  return "group_" + std::to_string(id);
}

}  // namespace tls::core
