// IANA "supported groups" (formerly elliptic curves) registry. The paper's
// §6.3.3 curve-usage analysis (secp256r1 84.4%, secp384r1 8.6%, x25519 6.7%)
// is computed over these identifiers.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace tls::core {

enum class NamedGroup : std::uint16_t {
  kSect163k1 = 1,
  kSect163r2 = 3,
  kSect233k1 = 6,
  kSect233r1 = 7,
  kSect283k1 = 9,
  kSect283r1 = 10,
  kSect409k1 = 11,
  kSect409r1 = 12,
  kSect571k1 = 13,
  kSect571r1 = 14,
  kSecp160r1 = 16,
  kSecp192k1 = 18,
  kSecp192r1 = 19,
  kSecp224k1 = 20,
  kSecp224r1 = 21,
  kSecp256k1 = 22,
  kSecp256r1 = 23,
  kSecp384r1 = 24,
  kSecp521r1 = 25,
  kBrainpoolP256r1 = 26,
  kBrainpoolP384r1 = 27,
  kBrainpoolP512r1 = 28,
  kX25519 = 29,
  kX448 = 30,
  kFfdhe2048 = 256,
  kFfdhe3072 = 257,
  kFfdhe4096 = 258,
};

struct NamedGroupInfo {
  std::uint16_t id;
  std::string_view name;
  bool elliptic;        // false for ffdhe groups
  int security_bits;    // approximate strength
};

std::span<const NamedGroupInfo> all_named_groups();
const NamedGroupInfo* find_named_group(std::uint16_t id);
std::string named_group_name(std::uint16_t id);

constexpr std::uint16_t wire_value(NamedGroup g) {
  return static_cast<std::uint16_t>(g);
}

/// EC point formats (RFC 4492); uncompressed is the only one that survived.
enum class EcPointFormat : std::uint8_t {
  kUncompressed = 0,
  kAnsiX962CompressedPrime = 1,
  kAnsiX962CompressedChar2 = 2,
};

}  // namespace tls::core
