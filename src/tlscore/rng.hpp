// Deterministic PRNG for the simulator: SplitMix64 for seeding and
// xoshiro256** for the stream. Every stochastic element of the study is
// driven by explicitly-seeded instances so figures are bit-reproducible.
#pragma once

#include <array>
#include <cstdint>

namespace tls::core {

constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next() ^ 0x9e3779b97f4a7c15ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tls::core
