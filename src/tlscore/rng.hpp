// Deterministic PRNG for the simulator: SplitMix64 for seeding and
// xoshiro256** for the stream. Every stochastic element of the study is
// driven by explicitly-seeded instances so figures are bit-reproducible.
#pragma once

#include <array>
#include <cstdint>

namespace tls::core {

constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next() ^ 0x9e3779b97f4a7c15ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stateless seed derivation for partitioned work: (seed, lane, shard)
/// always yields the same 64-bit stream seed, and distinct (lane, shard)
/// pairs yield decorrelated seeds. `lane` is typically a month index and
/// `shard` a within-month shard number, so a sharded run can hand every
/// (month, shard) task its own reproducible generator regardless of which
/// thread executes it or in what order.
constexpr std::uint64_t rng_stream_seed(std::uint64_t seed, std::uint64_t lane,
                                        std::uint64_t shard) {
  std::uint64_t state = seed ^ 0xa0761d6478bd642full;
  std::uint64_t h = splitmix64(state);
  state ^= (lane + 0x8bb84b93962eacc9ull) * 0x2545f4914f6cdd1dull;
  h ^= splitmix64(state);
  state ^= (shard + 0x71d67fffeda60000ull) * 0xd6e8feb86659fd93ull;
  h ^= splitmix64(state);
  return h;
}

/// An Rng seeded with rng_stream_seed(seed, lane, shard).
inline Rng rng_stream(std::uint64_t seed, std::uint64_t lane,
                      std::uint64_t shard) {
  return Rng(rng_stream_seed(seed, lane, shard));
}

}  // namespace tls::core
