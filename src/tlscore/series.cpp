#include "tlscore/series.hpp"

#include <stdexcept>

namespace tls::core {

AnchorSeries::AnchorSeries(
    std::initializer_list<std::pair<Month, double>> anchors) {
  for (const auto& [m, v] : anchors) add(m, v);
}

void AnchorSeries::add(Month m, double value) {
  if (!points_.empty() && !(points_.back().first < m)) {
    throw std::invalid_argument("anchors must be strictly increasing");
  }
  points_.emplace_back(m, value);
}

double AnchorSeries::at(Month m) const {
  if (points_.empty()) return 0.0;
  if (m <= points_.front().first) return points_.front().second;
  if (m >= points_.back().first) return points_.back().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (m <= points_[i].first) {
      const auto& [m0, v0] = points_[i - 1];
      const auto& [m1, v1] = points_[i];
      const double t =
          static_cast<double>(m - m0) / static_cast<double>(m1 - m0);
      return v0 + (v1 - v0) * t;
    }
  }
  return points_.back().second;
}

AnchorSeries AnchorSeries::constant(double value) {
  AnchorSeries s;
  s.add(Month(2000, 1), value);
  return s;
}

}  // namespace tls::core
