// Piecewise-linear time series anchored at months — the building block for
// every slowly-drifting population share in the simulator (server segment
// weights, client market shares, patch-adoption ramps).
#pragma once

#include <utility>
#include <vector>

#include "tlscore/dates.hpp"

namespace tls::core {

class AnchorSeries {
 public:
  AnchorSeries() = default;
  /// Anchors must be in strictly increasing month order.
  AnchorSeries(std::initializer_list<std::pair<Month, double>> anchors);

  void add(Month m, double value);

  /// Linear interpolation between anchors; clamped to the first/last value
  /// outside the anchored range. Zero when empty.
  [[nodiscard]] double at(Month m) const;

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const std::vector<std::pair<Month, double>>& points() const {
    return points_;
  }

  /// Constant series.
  static AnchorSeries constant(double value);

 private:
  std::vector<std::pair<Month, double>> points_;
};

}  // namespace tls::core
