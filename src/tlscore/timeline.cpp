#include "tlscore/timeline.hpp"

#include <vector>

namespace tls::core {

namespace {

// Dates follow §2.2 and the figure markers in the paper.
const std::vector<TimelineEvent>& events() {
  static const auto* v = new std::vector<TimelineEvent>{
      {"beast", "BEAST", Date(2011, 9, 6), EventKind::kAttack,
       "CBC predictable-IV attack on TLS <= 1.0; client-side mitigation"},
      {"lucky13", "Lucky13", Date(2012, 12, 6), EventKind::kAttack,
       "timing attack against CBC-mode MAC-then-encrypt"},
      {"rc4", "RC4", Date(2013, 3, 12), EventKind::kAttack,
       "AlFardan et al. single-byte/double-byte RC4 biases"},
      {"snowden", "Snowden", Date(2013, 6, 6), EventKind::kDisclosure,
       "surveillance revelations; forward-secrecy awareness"},
      {"heartbleed", "Heartbleed", Date(2014, 4, 7), EventKind::kAttack,
       "OpenSSL Heartbeat buffer over-read (public disclosure)"},
      {"poodle", "POODLE", Date(2014, 10, 14), EventKind::kAttack,
       "SSL3 CBC padding-oracle via version fallback"},
      {"rfc7465", "RFC 7465", Date(2015, 2, 1), EventKind::kStandard,
       "Prohibiting RC4 cipher suites"},
      {"freak", "FREAK", Date(2015, 3, 3), EventKind::kAttack,
       "downgrade to RSA_EXPORT 512-bit key transport"},
      {"rc4_passwords", "RC4 passwords", Date(2015, 3, 26),
       EventKind::kAttack, "Garman et al. password-recovery attacks on RC4"},
      {"logjam", "Logjam", Date(2015, 5, 20), EventKind::kAttack,
       "downgrade to DHE_EXPORT 512-bit groups"},
      {"rc4_nomore", "RC4 no more", Date(2015, 7, 15), EventKind::kAttack,
       "Vanhoef & Piessens practical RC4 cookie recovery"},
      {"sweet32", "Sweet32", Date(2016, 8, 31), EventKind::kAttack,
       "birthday-bound attack on 64-bit block ciphers (DES/3DES)"},
  };
  return *v;
}

}  // namespace

std::span<const TimelineEvent> attack_timeline() { return events(); }

const TimelineEvent* find_event(std::string_view id) {
  for (const auto& e : events()) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

}  // namespace tls::core
