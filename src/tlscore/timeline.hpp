// Timeline of the TLS attacks and events the paper correlates ecosystem
// changes against (§2.2 and the vertical markers in Figs. 1, 2, 3, 6, 8).
#pragma once

#include <span>
#include <string>

#include "tlscore/dates.hpp"

namespace tls::core {

enum class EventKind { kAttack, kDisclosure, kStandard, kBrowserChange };

struct TimelineEvent {
  std::string_view id;      // short slug, e.g. "poodle"
  std::string_view label;   // display label used in figures
  Date date;                // disclosure / publication date
  EventKind kind;
  std::string_view note;    // one-line description
};

/// The events of §2.2 plus Snowden, RFC 7465 and the RC4 follow-up papers,
/// in chronological order.
std::span<const TimelineEvent> attack_timeline();

/// Lookup by slug; nullptr when unknown.
const TimelineEvent* find_event(std::string_view id);

}  // namespace tls::core
