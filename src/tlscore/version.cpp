#include "tlscore/version.hpp"

#include <cstdio>

namespace tls::core {

std::string version_name(ProtocolVersion v) { return version_name(wire_value(v)); }

std::string version_name(std::uint16_t wire) {
  switch (wire) {
    case 0x0002: return "SSLv2";
    case 0x0300: return "SSLv3";
    case 0x0301: return "TLSv1.0";
    case 0x0302: return "TLSv1.1";
    case 0x0303: return "TLSv1.2";
    case 0x0304: return "TLSv1.3";
    default: break;
  }
  char buf[40];
  if ((wire & 0xff00) == 0x7f00) {
    std::snprintf(buf, sizeof(buf), "TLS 1.3 draft-%d", wire & 0xff);
  } else if ((wire & 0xff00) == 0x7e00) {
    std::snprintf(buf, sizeof(buf), "TLS 1.3 experiment 0x%04x", wire);
  } else {
    std::snprintf(buf, sizeof(buf), "version 0x%04x", wire);
  }
  return buf;
}

std::optional<Date> version_release_date(ProtocolVersion v) {
  switch (v) {
    case ProtocolVersion::kSsl2: return Date(1995, 2, 1);
    case ProtocolVersion::kSsl3: return Date(1996, 11, 1);
    case ProtocolVersion::kTls10: return Date(1999, 1, 1);
    case ProtocolVersion::kTls11: return Date(2006, 4, 1);
    case ProtocolVersion::kTls12: return Date(2008, 8, 1);
    case ProtocolVersion::kTls13: return Date(2018, 8, 1);
    default: return std::nullopt;
  }
}

int version_rank(ProtocolVersion v) {
  switch (v) {
    case ProtocolVersion::kSsl2: return 0;
    case ProtocolVersion::kSsl3: return 10;
    case ProtocolVersion::kTls10: return 20;
    case ProtocolVersion::kTls11: return 30;
    case ProtocolVersion::kTls12: return 40;
    case ProtocolVersion::kTls13: return 1000;
    default: break;
  }
  const auto w = wire_value(v);
  if ((w & 0xff00) == 0x7f00) return 50 + (w & 0xff);   // drafts: 50..305
  if ((w & 0xff00) == 0x7e00) return 400 + (w & 0xff);  // experiments
  return -1;
}

}  // namespace tls::core
