// SSL/TLS protocol version identifiers, wire encodings, and release dates
// (paper Table 1), plus the TLS 1.3 draft version space used by the
// supported_versions analysis in §6.4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tlscore/dates.hpp"

namespace tls::core {

/// Wire value of a protocol version as carried in record / hello fields.
/// TLS 1.3 drafts use 0x7f00 | draft, Google experimental variants 0x7exx.
enum class ProtocolVersion : std::uint16_t {
  kSsl2 = 0x0002,
  kSsl3 = 0x0300,
  kTls10 = 0x0301,
  kTls11 = 0x0302,
  kTls12 = 0x0303,
  kTls13 = 0x0304,
  kTls13Draft18 = 0x7f12,
  kTls13Draft22 = 0x7f16,
  kTls13Draft23 = 0x7f17,
  kTls13Draft28 = 0x7f1c,
  kTls13GoogleExperiment2 = 0x7e02,
};

constexpr std::uint16_t wire_value(ProtocolVersion v) {
  return static_cast<std::uint16_t>(v);
}

/// True for final TLS 1.3, any 0x7f-draft, or a Google 0x7e experiment.
constexpr bool is_tls13_family(ProtocolVersion v) {
  const auto w = wire_value(v);
  return v == ProtocolVersion::kTls13 || (w & 0xff00) == 0x7f00 ||
         (w & 0xff00) == 0x7e00;
}

constexpr bool is_grease_version(std::uint16_t w) {
  return (w & 0x0f0f) == 0x0a0a && ((w >> 8) == (w & 0xff));
}

/// Human-readable name ("TLSv1.2", "TLS 1.3 draft-28", ...).
std::string version_name(ProtocolVersion v);
std::string version_name(std::uint16_t wire);

/// Release date of an official protocol version (paper Table 1).
/// Returns nullopt for drafts/experiments.
std::optional<Date> version_release_date(ProtocolVersion v);

/// Ordering usable for negotiation: SSL2 < SSL3 < 1.0 < 1.1 < 1.2 < 1.3.
/// Drafts rank between TLS 1.2 and TLS 1.3 (ordered by draft number);
/// returns a comparable rank.
int version_rank(ProtocolVersion v);

/// All official versions in ascending order.
inline constexpr ProtocolVersion kOfficialVersions[] = {
    ProtocolVersion::kSsl2,  ProtocolVersion::kSsl3,  ProtocolVersion::kTls10,
    ProtocolVersion::kTls11, ProtocolVersion::kTls12, ProtocolVersion::kTls13,
};

}  // namespace tls::core
