#include "wire/alert.hpp"

namespace tls::wire {

std::string_view alert_description_name(AlertDescription d) {
  switch (d) {
    case AlertDescription::kCloseNotify: return "close_notify";
    case AlertDescription::kUnexpectedMessage: return "unexpected_message";
    case AlertDescription::kBadRecordMac: return "bad_record_mac";
    case AlertDescription::kHandshakeFailure: return "handshake_failure";
    case AlertDescription::kIllegalParameter: return "illegal_parameter";
    case AlertDescription::kDecodeError: return "decode_error";
    case AlertDescription::kProtocolVersion: return "protocol_version";
    case AlertDescription::kInsufficientSecurity:
      return "insufficient_security";
    case AlertDescription::kInternalError: return "internal_error";
    case AlertDescription::kInappropriateFallback:
      return "inappropriate_fallback";
    case AlertDescription::kUserCanceled: return "user_canceled";
    case AlertDescription::kNoRenegotiation: return "no_renegotiation";
    case AlertDescription::kUnsupportedExtension:
      return "unsupported_extension";
  }
  return "unknown";
}

std::vector<std::uint8_t> Alert::serialize_record(
    std::uint16_t record_version) const {
  Record rec;
  rec.type = ContentType::kAlert;
  rec.legacy_version = record_version;
  rec.fragment = {static_cast<std::uint8_t>(level),
                  static_cast<std::uint8_t>(description)};
  return rec.serialize();
}

void Alert::serialize_record_into(std::uint16_t record_version,
                                  std::vector<std::uint8_t>& out) const {
  out.clear();
  out.push_back(static_cast<std::uint8_t>(ContentType::kAlert));
  out.push_back(static_cast<std::uint8_t>(record_version >> 8));
  out.push_back(static_cast<std::uint8_t>(record_version & 0xff));
  out.push_back(0);
  out.push_back(2);
  out.push_back(static_cast<std::uint8_t>(level));
  out.push_back(static_cast<std::uint8_t>(description));
}

Alert Alert::parse_record(std::span<const std::uint8_t> data) {
  const Record rec = Record::parse(data);
  if (rec.type != ContentType::kAlert) {
    throw ParseError(ParseErrorCode::kBadValue, "not an alert record");
  }
  if (rec.fragment.size() != 2) {
    throw ParseError(ParseErrorCode::kBadLength, "alert body != 2 bytes");
  }
  const auto level = rec.fragment[0];
  if (level != 1 && level != 2) {
    throw ParseError(ParseErrorCode::kBadValue, "alert level");
  }
  Alert a;
  a.level = static_cast<AlertLevel>(level);
  a.description = static_cast<AlertDescription>(rec.fragment[1]);
  return a;
}

}  // namespace tls::wire
