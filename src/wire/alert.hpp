// TLS alert messages (RFC 5246 §7.2). Failed negotiations in the study
// terminate with an alert record; the monitor tallies them by description,
// which is how a passive tap distinguishes version mismatches from cipher
// mismatches from client aborts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wire/record.hpp"

namespace tls::wire {

enum class AlertLevel : std::uint8_t {
  kWarning = 1,
  kFatal = 2,
};

enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kUnexpectedMessage = 10,
  kBadRecordMac = 20,
  kHandshakeFailure = 40,
  kIllegalParameter = 47,
  kDecodeError = 50,
  kProtocolVersion = 70,
  kInsufficientSecurity = 71,
  kInternalError = 80,
  kInappropriateFallback = 86,
  kUserCanceled = 90,
  kNoRenegotiation = 100,
  kUnsupportedExtension = 110,
};

std::string_view alert_description_name(AlertDescription d);

struct Alert {
  AlertLevel level = AlertLevel::kFatal;
  AlertDescription description = AlertDescription::kHandshakeFailure;

  [[nodiscard]] std::vector<std::uint8_t> serialize_record(
      std::uint16_t record_version) const;
  /// serialize_record into a reusable buffer: no intermediate fragment
  /// vector. Byte-identical to serialize_record.
  void serialize_record_into(std::uint16_t record_version,
                             std::vector<std::uint8_t>& out) const;
  static Alert parse_record(std::span<const std::uint8_t> data);

  friend bool operator==(const Alert&, const Alert&) = default;
};

}  // namespace tls::wire
