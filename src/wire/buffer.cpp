#include "wire/buffer.hpp"

#include <stdexcept>

namespace tls::wire {

std::string_view parse_error_code_name(ParseErrorCode c) {
  switch (c) {
    case ParseErrorCode::kTruncated: return "truncated";
    case ParseErrorCode::kTrailingBytes: return "trailing-bytes";
    case ParseErrorCode::kBadLength: return "bad-length";
    case ParseErrorCode::kBadValue: return "bad-value";
    case ParseErrorCode::kUnsupported: return "unsupported";
  }
  return "unknown";
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u24() {
  need(3);
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 16 |
                          static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                          data_[pos_ + 2];
  pos_ += 3;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                          static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                          static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                          data_[pos_ + 3];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::span<const std::uint8_t> ByteReader::length_prefixed_u8() {
  return bytes(u8());
}

std::span<const std::uint8_t> ByteReader::length_prefixed_u16() {
  return bytes(u16());
}

std::span<const std::uint8_t> ByteReader::length_prefixed_u24() {
  return bytes(u24());
}

std::vector<std::uint16_t> ByteReader::u16_list_u16len() {
  const auto raw = length_prefixed_u16();
  if (raw.size() % 2 != 0) {
    throw ParseError(ParseErrorCode::kBadLength,
                     "u16 list has odd byte count " +
                         std::to_string(raw.size()));
  }
  std::vector<std::uint16_t> out;
  out.reserve(raw.size() / 2);
  for (std::size_t i = 0; i < raw.size(); i += 2) {
    out.push_back(static_cast<std::uint16_t>(raw[i] << 8 | raw[i + 1]));
  }
  return out;
}

void ByteReader::expect_empty(const char* context) const {
  if (!empty()) {
    throw ParseError(ParseErrorCode::kTrailingBytes,
                     std::string(context) + ": " +
                         std::to_string(remaining()) + " bytes left");
  }
}

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u24(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::bytes(std::span<const std::uint8_t> b) {
  out_.insert(out_.end(), b.begin(), b.end());
}

ByteWriter::LengthScope::LengthScope(ByteWriter& w, int prefix_bytes)
    : w_(w), at_(w.out_.size()), prefix_bytes_(prefix_bytes) {
  for (int i = 0; i < prefix_bytes_; ++i) w_.out_.push_back(0);
  ++w_.open_scopes_;
}

ByteWriter::LengthScope::~LengthScope() {
  --w_.open_scopes_;
  const std::size_t len =
      w_.out_.size() - at_ - static_cast<std::size_t>(prefix_bytes_);
  for (int i = 0; i < prefix_bytes_; ++i) {
    w_.out_[at_ + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        len >> (8 * (prefix_bytes_ - 1 - i)));
  }
}

std::vector<std::uint8_t> ByteWriter::take() {
  if (open_scopes_ != 0) {
    throw std::logic_error(
        "ByteWriter::take() while a LengthScope is still open");
  }
  return std::move(out_);
}

void ByteWriter::u16_list_u16len(std::span<const std::uint16_t> values) {
  u16(static_cast<std::uint16_t>(values.size() * 2));
  for (const auto v : values) u16(v);
}

}  // namespace tls::wire
