// Bounds-checked big-endian readers and writers used by every codec.
// ByteReader is a non-owning cursor over a span; ByteWriter owns a vector
// and offers RAII length-prefix scopes so nested TLS vectors cannot get
// their length fields wrong.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wire/errors.hpp"

namespace tls::wire {

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u24();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Consumes exactly n bytes.
  std::span<const std::uint8_t> bytes(std::size_t n);

  /// Consumes an n-byte length prefix then that many bytes.
  std::span<const std::uint8_t> length_prefixed_u8();
  std::span<const std::uint8_t> length_prefixed_u16();
  std::span<const std::uint8_t> length_prefixed_u24();

  /// Reads a u16-length-prefixed vector of u16 values (the common TLS list
  /// shape for cipher suites / groups / versions). Throws kBadLength when
  /// the byte count is odd.
  std::vector<std::uint16_t> u16_list_u16len();

  /// Throws kTrailingBytes unless fully consumed.
  void expect_empty(const char* context) const;

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw ParseError(ParseErrorCode::kTruncated,
                       "need " + std::to_string(n) + " bytes, have " +
                           std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopts an existing buffer as backing storage (cleared, capacity kept)
  /// so hot paths can serialize without a fresh allocation; reclaim it with
  /// take().
  explicit ByteWriter(std::vector<std::uint8_t>&& buf)
      : out_(std::move(buf)) {
    out_.clear();
  }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> b);

  /// RAII scope that back-patches an n-byte big-endian length prefix
  /// covering everything written inside the scope. The writer must outlive
  /// the scope and must not be moved from (take()) while a scope is alive.
  class LengthScope {
   public:
    LengthScope(ByteWriter& w, int prefix_bytes);
    LengthScope(const LengthScope&) = delete;
    LengthScope& operator=(const LengthScope&) = delete;
    ~LengthScope();

   private:
    ByteWriter& w_;
    std::size_t at_;
    int prefix_bytes_;
  };

  [[nodiscard]] LengthScope u8_length_scope() { return {*this, 1}; }
  [[nodiscard]] LengthScope u16_length_scope() { return {*this, 2}; }
  [[nodiscard]] LengthScope u24_length_scope() { return {*this, 3}; }

  /// Writes a u16 length prefix followed by the u16 values.
  void u16_list_u16len(std::span<const std::uint16_t> values);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  /// Moves the buffer out. Throws std::logic_error while any LengthScope is
  /// still open — its destructor would otherwise patch a moved-from vector.
  std::vector<std::uint8_t> take();
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
  int open_scopes_ = 0;
};

}  // namespace tls::wire
