#include "wire/client_hello.hpp"

#include <algorithm>

#include "tlscore/cipher_suites.hpp"

namespace tls::wire {

bool ClientHello::has_extension(std::uint16_t type) const {
  return find_extension(extensions, type) != nullptr;
}

std::optional<std::string> ClientHello::server_name() const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kServerName);
  if (e == nullptr) return std::nullopt;
  return parse_server_name(e->body);
}

std::optional<std::vector<std::uint16_t>> ClientHello::supported_groups()
    const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kSupportedGroups);
  if (e == nullptr) return std::nullopt;
  return parse_supported_groups(e->body);
}

std::optional<std::vector<std::uint8_t>> ClientHello::ec_point_formats()
    const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kEcPointFormats);
  if (e == nullptr) return std::nullopt;
  return parse_ec_point_formats(e->body);
}

std::optional<std::vector<std::uint16_t>> ClientHello::supported_versions()
    const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kSupportedVersions);
  if (e == nullptr) return std::nullopt;
  return parse_supported_versions_client(e->body);
}

std::optional<std::uint8_t> ClientHello::heartbeat_mode() const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kHeartbeat);
  if (e == nullptr) return std::nullopt;
  return parse_heartbeat(e->body);
}

std::uint16_t ClientHello::max_offered_version() const {
  const auto sv = supported_versions();
  if (!sv || sv->empty()) return legacy_version;
  std::uint16_t best = 0;
  int best_rank = -1;
  for (const auto v : *sv) {
    if (tls::core::is_grease_version(v)) continue;
    const int rank =
        tls::core::version_rank(static_cast<tls::core::ProtocolVersion>(v));
    if (rank > best_rank) {
      best_rank = rank;
      best = v;
    }
  }
  return best_rank >= 0 ? best : legacy_version;
}

void ClientHello::write_body(ByteWriter& w) const {
  w.u16(legacy_version);
  w.bytes(random);
  w.u8(static_cast<std::uint8_t>(session_id.size()));
  w.bytes(session_id);
  w.u16_list_u16len(cipher_suites);
  w.u8(static_cast<std::uint8_t>(compression_methods.size()));
  w.bytes(compression_methods);
  if (!extensions.empty()) {
    auto scope = w.u16_length_scope();
    for (const auto& e : extensions) {
      w.u16(e.type);
      w.u16(static_cast<std::uint16_t>(e.body.size()));
      w.bytes(e.body);
    }
  }
}

std::vector<std::uint8_t> ClientHello::serialize_body() const {
  ByteWriter w;
  write_body(w);
  return w.take();
}

ClientHello ClientHello::parse_body(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ClientHello ch;
  ch.legacy_version = r.u16();
  const auto rnd = r.bytes(32);
  std::copy(rnd.begin(), rnd.end(), ch.random.begin());
  const auto sid = r.length_prefixed_u8();
  ch.session_id.assign(sid.begin(), sid.end());
  ch.cipher_suites = r.u16_list_u16len();
  if (ch.cipher_suites.empty()) {
    throw ParseError(ParseErrorCode::kBadLength, "empty cipher suite list");
  }
  const auto comp = r.length_prefixed_u8();
  ch.compression_methods.assign(comp.begin(), comp.end());
  if (ch.compression_methods.empty()) {
    throw ParseError(ParseErrorCode::kBadLength, "empty compression list");
  }
  if (!r.empty()) {
    ByteReader exts(r.length_prefixed_u16());
    r.expect_empty("client hello");
    while (!exts.empty()) {
      Extension e;
      e.type = exts.u16();
      const auto b = exts.length_prefixed_u16();
      e.body.assign(b.begin(), b.end());
      ch.extensions.push_back(std::move(e));
    }
  }
  return ch;
}

std::vector<std::uint8_t> ClientHello::serialize_record() const {
  // Record-layer version convention: SSL3/TLS1.0 hellos use their own
  // version; TLS 1.1+ clients use 0x0301 for middlebox compatibility.
  const std::uint16_t record_version =
      legacy_version <= 0x0301 ? legacy_version : 0x0301;
  return wrap_handshake(HandshakeType::kClientHello, serialize_body(),
                        record_version);
}

void ClientHello::serialize_record_into(std::vector<std::uint8_t>& out) const {
  const std::uint16_t record_version =
      legacy_version <= 0x0301 ? legacy_version : 0x0301;
  ByteWriter w(std::move(out));
  w.u8(static_cast<std::uint8_t>(ContentType::kHandshake));
  w.u16(record_version);
  {
    auto fragment = w.u16_length_scope();
    w.u8(static_cast<std::uint8_t>(HandshakeType::kClientHello));
    auto body = w.u24_length_scope();
    write_body(w);
  }
  out = w.take();
  // Parity with Record::serialize's fragment bound (record header is 5B).
  if (out.size() - 5 > 0x4000 + 2048) {
    throw ParseError(ParseErrorCode::kBadLength, "record fragment too large");
  }
}

ClientHello ClientHello::parse_record(std::span<const std::uint8_t> data) {
  return parse_body(unwrap_handshake(data, HandshakeType::kClientHello));
}

}  // namespace tls::wire
