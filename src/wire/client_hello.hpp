// ClientHello message (RFC 5246 §7.4.1.2 with RFC 8446-compatible
// extensions). This is the message the Notary fingerprints and the message
// every simulated client emits.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tlscore/cipher_suites.hpp"
#include "tlscore/version.hpp"
#include "wire/extension_codec.hpp"
#include "wire/record.hpp"

namespace tls::wire {

struct ClientHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint8_t> session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::vector<std::uint8_t> compression_methods{0};
  std::vector<Extension> extensions;

  // ---- typed extension accessors (nullopt when the extension is absent) --

  [[nodiscard]] bool has_extension(std::uint16_t type) const;
  [[nodiscard]] bool has_extension(tls::core::ExtensionType type) const {
    return has_extension(tls::core::wire_value(type));
  }
  [[nodiscard]] std::optional<std::string> server_name() const;
  [[nodiscard]] std::optional<std::vector<std::uint16_t>> supported_groups()
      const;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> ec_point_formats()
      const;
  /// supported_versions list (TLS 1.3 clients); nullopt when absent.
  [[nodiscard]] std::optional<std::vector<std::uint16_t>> supported_versions()
      const;
  [[nodiscard]] std::optional<std::uint8_t> heartbeat_mode() const;

  /// Effective maximum version offered: max of supported_versions when
  /// present (TLS 1.3 semantics, §6.4), otherwise legacy_version.
  [[nodiscard]] std::uint16_t max_offered_version() const;

  /// True if any offered cipher suite (ignoring SCSVs/GREASE) satisfies the
  /// predicate — the "client advertises X" relation in Figs. 3, 6, 7, 10.
  template <typename Pred>
  [[nodiscard]] bool offers(Pred&& pred) const {
    for (const auto id : cipher_suites) {
      const auto* info = tls::core::find_cipher_suite(id);
      if (info != nullptr && !info->scsv && pred(*info)) return true;
    }
    return false;
  }

  // ---- wire codec ----

  /// Serializes the handshake body (no record / handshake framing).
  [[nodiscard]] std::vector<std::uint8_t> serialize_body() const;
  /// Streams the handshake body into an existing writer (no framing).
  void write_body(ByteWriter& w) const;
  static ClientHello parse_body(std::span<const std::uint8_t> body);

  /// Full record: TLSPlaintext(handshake(client_hello)).
  [[nodiscard]] std::vector<std::uint8_t> serialize_record() const;
  /// serialize_record into a reusable buffer: one pass, no intermediate
  /// body/fragment vectors, byte-identical output. `out` is replaced.
  void serialize_record_into(std::vector<std::uint8_t>& out) const;
  static ClientHello parse_record(std::span<const std::uint8_t> data);

  friend bool operator==(const ClientHello&, const ClientHello&) = default;
};

}  // namespace tls::wire
