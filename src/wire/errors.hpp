// Error taxonomy for wire-format parsing. All parsers throw ParseError with
// a specific code so tests and the monitor's malformed-input counters can
// distinguish truncation from structural violations.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace tls::wire {

enum class ParseErrorCode {
  kTruncated,        // input shorter than a declared length
  kTrailingBytes,    // declared length shorter than the input consumed
  kBadLength,        // internal length field inconsistent (e.g. odd u16 list)
  kBadValue,         // illegal enum / reserved value
  kUnsupported,      // recognized but unimplemented construct
};

/// Number of ParseErrorCode values (for per-code counter arrays).
inline constexpr std::size_t kParseErrorCodeCount = 5;

std::string_view parse_error_code_name(ParseErrorCode c);

class ParseError : public std::runtime_error {
 public:
  ParseError(ParseErrorCode code, const std::string& what)
      : std::runtime_error(std::string(parse_error_code_name(code)) + ": " +
                           what),
        code_(code) {}

  [[nodiscard]] ParseErrorCode code() const { return code_; }

 private:
  ParseErrorCode code_;
};

}  // namespace tls::wire
