#include "wire/extension_codec.hpp"

namespace tls::wire {

using tls::core::ExtensionType;

namespace {

Extension ext(ExtensionType t, ByteWriter&& w) {
  return Extension{tls::core::wire_value(t), w.take()};
}

}  // namespace

Extension make_server_name(std::string_view host) {
  ByteWriter w;
  {
    auto list = w.u16_length_scope();
    w.u8(0);  // name_type: host_name
    auto name = w.u16_length_scope();
    w.bytes({reinterpret_cast<const std::uint8_t*>(host.data()), host.size()});
  }
  return ext(ExtensionType::kServerName, std::move(w));
}

Extension make_supported_groups(std::span<const std::uint16_t> groups) {
  ByteWriter w;
  w.u16_list_u16len(groups);
  return ext(ExtensionType::kSupportedGroups, std::move(w));
}

Extension make_ec_point_formats(std::span<const std::uint8_t> formats) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(formats.size()));
  w.bytes(formats);
  return ext(ExtensionType::kEcPointFormats, std::move(w));
}

Extension make_supported_versions_client(
    std::span<const std::uint16_t> versions) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(versions.size() * 2));
  for (const auto v : versions) w.u16(v);
  return ext(ExtensionType::kSupportedVersions, std::move(w));
}

Extension make_supported_versions_server(std::uint16_t version) {
  ByteWriter w;
  w.u16(version);
  return ext(ExtensionType::kSupportedVersions, std::move(w));
}

Extension make_signature_algorithms(std::span<const std::uint16_t> schemes) {
  ByteWriter w;
  w.u16_list_u16len(schemes);
  return ext(ExtensionType::kSignatureAlgorithms, std::move(w));
}

Extension make_alpn(std::span<const std::string> protocols) {
  ByteWriter w;
  {
    auto list = w.u16_length_scope();
    for (const auto& p : protocols) {
      w.u8(static_cast<std::uint8_t>(p.size()));
      w.bytes({reinterpret_cast<const std::uint8_t*>(p.data()), p.size()});
    }
  }
  return ext(ExtensionType::kAlpn, std::move(w));
}

Extension make_heartbeat(std::uint8_t mode) {
  ByteWriter w;
  w.u8(mode);
  return ext(ExtensionType::kHeartbeat, std::move(w));
}

Extension make_session_ticket(std::span<const std::uint8_t> ticket) {
  ByteWriter w;
  w.bytes(ticket);
  return ext(ExtensionType::kSessionTicket, std::move(w));
}

Extension make_renegotiation_info(std::span<const std::uint8_t> verify_data) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(verify_data.size()));
  w.bytes(verify_data);
  return ext(ExtensionType::kRenegotiationInfo, std::move(w));
}

Extension make_encrypt_then_mac() {
  return Extension{tls::core::wire_value(ExtensionType::kEncryptThenMac), {}};
}

Extension make_extended_master_secret() {
  return Extension{
      tls::core::wire_value(ExtensionType::kExtendedMasterSecret), {}};
}

Extension make_status_request() {
  ByteWriter w;
  w.u8(1);   // ocsp
  w.u16(0);  // responder_id_list
  w.u16(0);  // request_extensions
  return ext(ExtensionType::kStatusRequest, std::move(w));
}

Extension make_sct() {
  return Extension{
      tls::core::wire_value(ExtensionType::kSignedCertificateTimestamp), {}};
}

Extension make_padding(std::size_t n) {
  return Extension{tls::core::wire_value(ExtensionType::kPadding),
                   std::vector<std::uint8_t>(n, 0)};
}

Extension make_key_share_client(std::span<const std::uint16_t> groups) {
  ByteWriter w;
  {
    auto list = w.u16_length_scope();
    for (const auto g : groups) {
      w.u16(g);
      // Stub 32-byte key material; the simulator never evaluates it.
      auto key = w.u16_length_scope();
      for (int i = 0; i < 32; ++i) w.u8(static_cast<std::uint8_t>(g + i));
    }
  }
  return ext(ExtensionType::kKeyShare, std::move(w));
}

Extension make_key_share_server(std::uint16_t group) {
  ByteWriter w;
  w.u16(group);
  {
    auto key = w.u16_length_scope();
    for (int i = 0; i < 32; ++i) w.u8(static_cast<std::uint8_t>(group + i));
  }
  return ext(ExtensionType::kKeyShare, std::move(w));
}

Extension make_psk_key_exchange_modes(std::span<const std::uint8_t> modes) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(modes.size()));
  w.bytes(modes);
  return ext(ExtensionType::kPskKeyExchangeModes, std::move(w));
}

Extension make_grease_extension(std::uint16_t grease_value) {
  return Extension{grease_value, {}};
}

std::string parse_server_name(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ByteReader list(r.length_prefixed_u16());
  r.expect_empty("server_name");
  const auto name_type = list.u8();
  if (name_type != 0) {
    throw ParseError(ParseErrorCode::kBadValue, "server_name type != host");
  }
  const auto name = list.length_prefixed_u16();
  return std::string(reinterpret_cast<const char*>(name.data()), name.size());
}

std::vector<std::uint16_t> parse_supported_groups(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  auto groups = r.u16_list_u16len();
  r.expect_empty("supported_groups");
  return groups;
}

std::vector<std::uint8_t> parse_ec_point_formats(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto formats = r.length_prefixed_u8();
  r.expect_empty("ec_point_formats");
  return {formats.begin(), formats.end()};
}

std::vector<std::uint16_t> parse_supported_versions_client(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto raw = r.length_prefixed_u8();
  r.expect_empty("supported_versions");
  if (raw.size() % 2 != 0) {
    throw ParseError(ParseErrorCode::kBadLength, "odd supported_versions");
  }
  std::vector<std::uint16_t> out;
  for (std::size_t i = 0; i < raw.size(); i += 2) {
    out.push_back(static_cast<std::uint16_t>(raw[i] << 8 | raw[i + 1]));
  }
  return out;
}

std::uint16_t parse_supported_versions_server(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto v = r.u16();
  r.expect_empty("supported_versions(server)");
  return v;
}

std::vector<std::uint16_t> parse_signature_algorithms(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  auto schemes = r.u16_list_u16len();
  r.expect_empty("signature_algorithms");
  return schemes;
}

std::vector<std::string> parse_alpn(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ByteReader list(r.length_prefixed_u16());
  r.expect_empty("alpn");
  std::vector<std::string> out;
  while (!list.empty()) {
    const auto p = list.length_prefixed_u8();
    out.emplace_back(reinterpret_cast<const char*>(p.data()), p.size());
  }
  return out;
}

std::uint8_t parse_heartbeat(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto mode = r.u8();
  r.expect_empty("heartbeat");
  if (mode != 1 && mode != 2) {
    throw ParseError(ParseErrorCode::kBadValue, "heartbeat mode");
  }
  return mode;
}

std::vector<std::uint16_t> parse_key_share_client_groups(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ByteReader list(r.length_prefixed_u16());
  r.expect_empty("key_share");
  std::vector<std::uint16_t> groups;
  while (!list.empty()) {
    groups.push_back(list.u16());
    list.length_prefixed_u16();  // skip key material
  }
  return groups;
}

std::uint16_t parse_key_share_server_group(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto group = r.u16();
  r.length_prefixed_u16();
  r.expect_empty("key_share(server)");
  return group;
}

const Extension* find_extension(std::span<const Extension> exts,
                                std::uint16_t type) {
  for (const auto& e : exts) {
    if (e.type == type) return &e;
  }
  return nullptr;
}

}  // namespace tls::wire
