// Typed codecs for the extension bodies the study inspects. An Extension is
// carried as (type, opaque body); these helpers encode/decode the bodies of
// the extensions that matter for fingerprinting and the analyses:
// server_name, supported_groups, ec_point_formats, supported_versions,
// signature_algorithms, ALPN, heartbeat, session_ticket, renegotiation_info,
// encrypt_then_mac, key_share.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tlscore/extensions.hpp"
#include "wire/buffer.hpp"

namespace tls::wire {

struct Extension {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> body;

  friend bool operator==(const Extension&, const Extension&) = default;
};

// ---- builders (ClientHello direction unless noted) ----

Extension make_server_name(std::string_view host);
Extension make_supported_groups(std::span<const std::uint16_t> groups);
Extension make_ec_point_formats(std::span<const std::uint8_t> formats);
Extension make_supported_versions_client(
    std::span<const std::uint16_t> versions);
Extension make_supported_versions_server(std::uint16_t version);
Extension make_signature_algorithms(std::span<const std::uint16_t> schemes);
Extension make_alpn(std::span<const std::string> protocols);
/// mode: 1 = peer_allowed_to_send, 2 = peer_not_allowed_to_send (RFC 6520).
Extension make_heartbeat(std::uint8_t mode);
Extension make_session_ticket(std::span<const std::uint8_t> ticket = {});
Extension make_renegotiation_info(
    std::span<const std::uint8_t> verify_data = {});
Extension make_encrypt_then_mac();
Extension make_extended_master_secret();
Extension make_status_request();
Extension make_sct();
Extension make_padding(std::size_t n);
/// Client key_share with empty (stub) key material per group — enough for
/// negotiation simulation; we never perform the actual ECDH.
Extension make_key_share_client(std::span<const std::uint16_t> groups);
Extension make_key_share_server(std::uint16_t group);
Extension make_psk_key_exchange_modes(std::span<const std::uint8_t> modes);
Extension make_grease_extension(std::uint16_t grease_value);

// ---- parsers ----

std::string parse_server_name(std::span<const std::uint8_t> body);
std::vector<std::uint16_t> parse_supported_groups(
    std::span<const std::uint8_t> body);
std::vector<std::uint8_t> parse_ec_point_formats(
    std::span<const std::uint8_t> body);
std::vector<std::uint16_t> parse_supported_versions_client(
    std::span<const std::uint8_t> body);
std::uint16_t parse_supported_versions_server(
    std::span<const std::uint8_t> body);
std::vector<std::uint16_t> parse_signature_algorithms(
    std::span<const std::uint8_t> body);
std::vector<std::string> parse_alpn(std::span<const std::uint8_t> body);
std::uint8_t parse_heartbeat(std::span<const std::uint8_t> body);
std::vector<std::uint16_t> parse_key_share_client_groups(
    std::span<const std::uint8_t> body);
std::uint16_t parse_key_share_server_group(std::span<const std::uint8_t> body);

/// Finds the first extension of `type`; nullptr when absent.
const Extension* find_extension(std::span<const Extension> exts,
                                std::uint16_t type);
inline const Extension* find_extension(std::span<const Extension> exts,
                                       tls::core::ExtensionType type) {
  return find_extension(exts, tls::core::wire_value(type));
}

}  // namespace tls::wire
