#include "wire/heartbeat.hpp"

#include <algorithm>

namespace tls::wire {

std::vector<std::uint8_t> HeartbeatMessage::serialize_record(
    std::uint16_t record_version) const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(claimed_payload_length);
  w.bytes(payload);
  w.bytes(padding);
  Record rec;
  rec.type = ContentType::kHeartbeat;
  rec.legacy_version = record_version;
  rec.fragment = w.take();
  return rec.serialize();
}

HeartbeatMessage HeartbeatMessage::parse_record(
    std::span<const std::uint8_t> data) {
  const Record rec = Record::parse(data);
  if (rec.type != ContentType::kHeartbeat) {
    throw ParseError(ParseErrorCode::kBadValue, "not a heartbeat record");
  }
  ByteReader r(rec.fragment);
  HeartbeatMessage m;
  const auto type = r.u8();
  if (type != 1 && type != 2) {
    throw ParseError(ParseErrorCode::kBadValue, "heartbeat message type");
  }
  m.type = static_cast<HeartbeatMessageType>(type);
  m.claimed_payload_length = r.u16();
  // The payload/padding boundary is ambiguous when the length lies; take
  // the RFC reading: payload is min(claimed, what's actually there).
  const std::size_t actual =
      std::min<std::size_t>(m.claimed_payload_length, r.remaining());
  const auto payload = r.bytes(actual);
  m.payload.assign(payload.begin(), payload.end());
  const auto padding = r.bytes(r.remaining());
  m.padding.assign(padding.begin(), padding.end());
  return m;
}

HeartbeatResponder::HeartbeatResponder(bool vulnerable,
                                       std::vector<std::uint8_t> memory)
    : vulnerable_(vulnerable), memory_(std::move(memory)) {}

std::optional<std::vector<std::uint8_t>> HeartbeatResponder::respond(
    std::span<const std::uint8_t> request_record) const {
  HeartbeatMessage request;
  try {
    request = HeartbeatMessage::parse_record(request_record);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  if (request.type != HeartbeatMessageType::kRequest) return std::nullopt;

  HeartbeatMessage response;
  response.type = HeartbeatMessageType::kResponse;

  if (vulnerable_) {
    // CVE-2014-0160: trust claimed_payload_length; copy that many bytes
    // starting from the request's payload, continuing into adjacent
    // (synthetic) process memory.
    response.claimed_payload_length = request.claimed_payload_length;
    response.payload = request.payload;
    std::size_t leak = request.claimed_payload_length - request.payload.size();
    for (std::size_t i = 0; i < leak; ++i) {
      response.payload.push_back(memory_[i % std::max<std::size_t>(
                                              memory_.size(), 1)]);
    }
  } else {
    // RFC 6520 §4: "If the payload_length of a received HeartbeatMessage is
    // too large, the received HeartbeatMessage MUST be discarded silently."
    if (!request.well_formed()) return std::nullopt;
    response.claimed_payload_length = request.claimed_payload_length;
    response.payload = request.payload;
  }
  return response.serialize_record(0x0303);
}

HeartbeatMessage make_heartbleed_probe(std::uint16_t overread) {
  HeartbeatMessage probe;
  probe.type = HeartbeatMessageType::kRequest;
  probe.payload = {'h', 'b'};
  probe.claimed_payload_length =
      static_cast<std::uint16_t>(probe.payload.size() + overread);
  return probe;
}

bool probe_indicates_vulnerable(
    const std::optional<std::vector<std::uint8_t>>& response,
    std::uint16_t overread) {
  if (!response.has_value()) return false;
  HeartbeatMessage m;
  try {
    m = HeartbeatMessage::parse_record(*response);
  } catch (const ParseError&) {
    return false;
  }
  return m.type == HeartbeatMessageType::kResponse &&
         m.payload.size() >= 2 + overread;
}

}  // namespace tls::wire
