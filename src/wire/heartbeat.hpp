// RFC 6520 heartbeat messages and a simulated responder that reproduces the
// CVE-2014-0160 (Heartbleed) behaviour against *synthetic* memory: a
// vulnerable responder trusts the attacker-controlled payload_length field
// and reads past the request, leaking filler "process memory"; a patched
// responder (RFC-compliant) silently discards mismatched lengths. This is
// the probe the §5.4 scans used to measure the vulnerable population.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "wire/record.hpp"

namespace tls::wire {

enum class HeartbeatMessageType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct HeartbeatMessage {
  HeartbeatMessageType type = HeartbeatMessageType::kRequest;
  /// The length the sender *claims* its payload has. For well-formed
  /// messages this equals payload.size(); Heartbleed probes lie here.
  std::uint16_t claimed_payload_length = 0;
  std::vector<std::uint8_t> payload;
  /// RFC 6520 requires >= 16 bytes of random padding.
  std::vector<std::uint8_t> padding = std::vector<std::uint8_t>(16, 0);

  /// Serializes exactly what the struct says — including a lying
  /// claimed_payload_length, which is the point of the probe.
  [[nodiscard]] std::vector<std::uint8_t> serialize_record(
      std::uint16_t record_version) const;
  /// Parses the record; does NOT reject claimed_payload_length mismatches
  /// (that check is the responder's job — the bug under study).
  static HeartbeatMessage parse_record(std::span<const std::uint8_t> data);

  [[nodiscard]] bool well_formed() const {
    return claimed_payload_length == payload.size() && padding.size() >= 16;
  }
};

/// A server's heartbeat implementation over synthetic process memory.
class HeartbeatResponder {
 public:
  /// `vulnerable`: pre-CVE-2014-0160 behaviour. `memory` is the synthetic
  /// process memory an over-read would leak from (never real data).
  HeartbeatResponder(bool vulnerable, std::vector<std::uint8_t> memory);

  /// Handles one request record. Returns the response record bytes, or
  /// nullopt when the implementation (correctly) drops the message.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> respond(
      std::span<const std::uint8_t> request_record) const;

  [[nodiscard]] bool vulnerable() const { return vulnerable_; }

 private:
  bool vulnerable_;
  std::vector<std::uint8_t> memory_;
};

/// The scan probe: a request whose claimed_payload_length exceeds its real
/// payload by `overread` bytes.
HeartbeatMessage make_heartbleed_probe(std::uint16_t overread = 64);

/// Interprets a responder's answer to make_heartbleed_probe():
/// true  -> over-long response: the peer read past the request (vulnerable);
/// false -> well-formed response or silence (patched / heartbeat disabled).
bool probe_indicates_vulnerable(
    const std::optional<std::vector<std::uint8_t>>& response,
    std::uint16_t overread = 64);

}  // namespace tls::wire
