#include "wire/record.hpp"

namespace tls::wire {

std::vector<std::uint8_t> Record::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(legacy_version);
  if (fragment.size() > 0x4000 + 2048) {
    throw ParseError(ParseErrorCode::kBadLength, "record fragment too large");
  }
  w.u16(static_cast<std::uint16_t>(fragment.size()));
  w.bytes(fragment);
  return w.take();
}

Record Record::parse(std::span<const std::uint8_t> data) {
  std::size_t consumed = 0;
  Record r = parse_prefix(data, &consumed);
  if (consumed != data.size()) {
    throw ParseError(ParseErrorCode::kTrailingBytes,
                     "record followed by " +
                         std::to_string(data.size() - consumed) + " bytes");
  }
  return r;
}

Record Record::parse_prefix(std::span<const std::uint8_t> data,
                            std::size_t* consumed) {
  ByteReader r(data);
  Record rec;
  const auto type = r.u8();
  switch (type) {
    case 20: case 21: case 22: case 23: case 24:
      rec.type = static_cast<ContentType>(type);
      break;
    default:
      throw ParseError(ParseErrorCode::kBadValue,
                       "unknown content type " + std::to_string(type));
  }
  rec.legacy_version = r.u16();
  const auto frag = r.length_prefixed_u16();
  rec.fragment.assign(frag.begin(), frag.end());
  if (consumed != nullptr) *consumed = r.position();
  return rec;
}

std::vector<std::uint8_t> HandshakeMessage::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u24(static_cast<std::uint32_t>(body.size()));
  w.bytes(body);
  return w.take();
}

HandshakeMessage HandshakeMessage::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HandshakeMessage m;
  m.type = static_cast<HandshakeType>(r.u8());
  const auto body = r.length_prefixed_u24();
  m.body.assign(body.begin(), body.end());
  r.expect_empty("handshake message");
  return m;
}

std::vector<std::uint8_t> wrap_handshake(HandshakeType type,
                                         std::span<const std::uint8_t> body,
                                         std::uint16_t record_version) {
  HandshakeMessage m;
  m.type = type;
  m.body.assign(body.begin(), body.end());
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.legacy_version = record_version;
  rec.fragment = m.serialize();
  return rec.serialize();
}

std::vector<std::uint8_t> unwrap_handshake(std::span<const std::uint8_t> data,
                                           HandshakeType expected) {
  const Record rec = Record::parse(data);
  if (rec.type != ContentType::kHandshake) {
    throw ParseError(ParseErrorCode::kBadValue, "not a handshake record");
  }
  HandshakeMessage m = HandshakeMessage::parse(rec.fragment);
  if (m.type != expected) {
    throw ParseError(ParseErrorCode::kBadValue, "unexpected handshake type");
  }
  return std::move(m.body);
}

}  // namespace tls::wire
