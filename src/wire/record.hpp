// TLS record layer (TLSPlaintext) and handshake message framing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wire/buffer.hpp"

namespace tls::wire {

enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
  kHeartbeat = 24,
};

enum class HandshakeType : std::uint8_t {
  kHelloRequest = 0,
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kCertificate = 11,
  kServerKeyExchange = 12,
  kCertificateRequest = 13,
  kServerHelloDone = 14,
  kCertificateVerify = 15,
  kClientKeyExchange = 16,
  kFinished = 20,
};

/// One plaintext record: 5-byte header + fragment.
struct Record {
  ContentType type = ContentType::kHandshake;
  std::uint16_t legacy_version = 0x0301;
  std::vector<std::uint8_t> fragment;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parses exactly one record; throws ParseError on truncation.
  static Record parse(std::span<const std::uint8_t> data);
  /// Parses one record from the front of `data`, returning bytes consumed.
  static Record parse_prefix(std::span<const std::uint8_t> data,
                             std::size_t* consumed);
};

/// A handshake message: 1-byte type + u24 length + body.
struct HandshakeMessage {
  HandshakeType type = HandshakeType::kClientHello;
  std::vector<std::uint8_t> body;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static HandshakeMessage parse(std::span<const std::uint8_t> data);
};

/// Wraps a handshake body into record(record_version)+handshake framing.
std::vector<std::uint8_t> wrap_handshake(HandshakeType type,
                                         std::span<const std::uint8_t> body,
                                         std::uint16_t record_version);

/// Unwraps record + handshake framing; checks the handshake type matches.
std::vector<std::uint8_t> unwrap_handshake(std::span<const std::uint8_t> data,
                                           HandshakeType expected);

}  // namespace tls::wire
