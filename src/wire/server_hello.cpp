#include "wire/server_hello.hpp"

#include <algorithm>

#include "tlscore/version.hpp"

namespace tls::wire {

bool ServerHello::has_extension(std::uint16_t type) const {
  return find_extension(extensions, type) != nullptr;
}

std::uint16_t ServerHello::negotiated_version() const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kSupportedVersions);
  if (e != nullptr) return parse_supported_versions_server(e->body);
  return legacy_version;
}

std::optional<std::uint8_t> ServerHello::heartbeat_mode() const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kHeartbeat);
  if (e == nullptr) return std::nullopt;
  return parse_heartbeat(e->body);
}

std::optional<std::uint16_t> ServerHello::key_share_group() const {
  const auto* e =
      find_extension(extensions, tls::core::ExtensionType::kKeyShare);
  if (e == nullptr) return std::nullopt;
  return parse_key_share_server_group(e->body);
}

void ServerHello::write_body(ByteWriter& w) const {
  w.u16(legacy_version);
  w.bytes(random);
  w.u8(static_cast<std::uint8_t>(session_id.size()));
  w.bytes(session_id);
  w.u16(cipher_suite);
  w.u8(compression_method);
  if (!extensions.empty()) {
    auto scope = w.u16_length_scope();
    for (const auto& e : extensions) {
      w.u16(e.type);
      w.u16(static_cast<std::uint16_t>(e.body.size()));
      w.bytes(e.body);
    }
  }
}

std::vector<std::uint8_t> ServerHello::serialize_body() const {
  ByteWriter w;
  write_body(w);
  return w.take();
}

ServerHello ServerHello::parse_body(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ServerHello sh;
  sh.legacy_version = r.u16();
  const auto rnd = r.bytes(32);
  std::copy(rnd.begin(), rnd.end(), sh.random.begin());
  const auto sid = r.length_prefixed_u8();
  sh.session_id.assign(sid.begin(), sid.end());
  sh.cipher_suite = r.u16();
  sh.compression_method = r.u8();
  if (!r.empty()) {
    ByteReader exts(r.length_prefixed_u16());
    r.expect_empty("server hello");
    while (!exts.empty()) {
      Extension e;
      e.type = exts.u16();
      const auto b = exts.length_prefixed_u16();
      e.body.assign(b.begin(), b.end());
      sh.extensions.push_back(std::move(e));
    }
  }
  return sh;
}

std::vector<std::uint8_t> ServerHello::serialize_record() const {
  const std::uint16_t record_version =
      legacy_version <= 0x0301 ? legacy_version : 0x0301;
  return wrap_handshake(HandshakeType::kServerHello, serialize_body(),
                        record_version);
}

void ServerHello::serialize_record_into(std::vector<std::uint8_t>& out) const {
  const std::uint16_t record_version =
      legacy_version <= 0x0301 ? legacy_version : 0x0301;
  ByteWriter w(std::move(out));
  w.u8(static_cast<std::uint8_t>(ContentType::kHandshake));
  w.u16(record_version);
  {
    auto fragment = w.u16_length_scope();
    w.u8(static_cast<std::uint8_t>(HandshakeType::kServerHello));
    auto body = w.u24_length_scope();
    write_body(w);
  }
  out = w.take();
  // Parity with Record::serialize's fragment bound (record header is 5B).
  if (out.size() - 5 > 0x4000 + 2048) {
    throw ParseError(ParseErrorCode::kBadLength, "record fragment too large");
  }
}

ServerHello ServerHello::parse_record(std::span<const std::uint8_t> data) {
  return parse_body(unwrap_handshake(data, HandshakeType::kServerHello));
}

}  // namespace tls::wire
