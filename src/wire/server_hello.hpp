// ServerHello message: the server's final choice of version, cipher suite
// and extensions — the "negotiated" side of every figure in §5/§6.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "wire/extension_codec.hpp"
#include "wire/record.hpp"

namespace tls::wire {

struct ServerHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint8_t> session_id;
  std::uint16_t cipher_suite = 0;
  std::uint8_t compression_method = 0;
  std::vector<Extension> extensions;

  [[nodiscard]] bool has_extension(std::uint16_t type) const;
  [[nodiscard]] bool has_extension(tls::core::ExtensionType type) const {
    return has_extension(tls::core::wire_value(type));
  }
  /// Negotiated version: supported_versions (TLS 1.3) wins over the legacy
  /// field, matching RFC 8446 §4.1.3 and the paper's §6.4 methodology.
  [[nodiscard]] std::uint16_t negotiated_version() const;
  [[nodiscard]] std::optional<std::uint8_t> heartbeat_mode() const;
  [[nodiscard]] std::optional<std::uint16_t> key_share_group() const;

  [[nodiscard]] std::vector<std::uint8_t> serialize_body() const;
  /// Streams the handshake body into an existing writer (no framing).
  void write_body(ByteWriter& w) const;
  static ServerHello parse_body(std::span<const std::uint8_t> body);
  [[nodiscard]] std::vector<std::uint8_t> serialize_record() const;
  /// serialize_record into a reusable buffer: one pass, no intermediate
  /// body/fragment vectors, byte-identical output. `out` is replaced.
  void serialize_record_into(std::vector<std::uint8_t>& out) const;
  static ServerHello parse_record(std::span<const std::uint8_t> data);

  friend bool operator==(const ServerHello&, const ServerHello&) = default;
};

}  // namespace tls::wire
