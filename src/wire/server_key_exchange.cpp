#include "wire/server_key_exchange.hpp"

namespace tls::wire {

std::vector<std::uint8_t> EcdheServerKeyExchange::serialize_body() const {
  ByteWriter w;
  w.u8(3);  // curve_type: named_curve
  w.u16(named_curve);
  w.u8(static_cast<std::uint8_t>(public_point.size()));
  w.bytes(public_point);
  w.u16(0x0401);  // signature algorithm: rsa_pkcs1_sha256 (stub)
  w.u16(static_cast<std::uint16_t>(signature.size()));
  w.bytes(signature);
  return w.take();
}

EcdheServerKeyExchange EcdheServerKeyExchange::parse_body(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto curve_type = r.u8();
  if (curve_type != 3) {
    throw ParseError(ParseErrorCode::kUnsupported,
                     "only named_curve ECDHE is supported");
  }
  EcdheServerKeyExchange ske;
  ske.named_curve = r.u16();
  const auto point = r.length_prefixed_u8();
  ske.public_point.assign(point.begin(), point.end());
  r.u16();  // signature algorithm
  const auto sig = r.length_prefixed_u16();
  ske.signature.assign(sig.begin(), sig.end());
  r.expect_empty("server key exchange");
  return ske;
}

std::vector<std::uint8_t> EcdheServerKeyExchange::serialize_record(
    std::uint16_t record_version) const {
  return wrap_handshake(HandshakeType::kServerKeyExchange, serialize_body(),
                        record_version);
}

void EcdheServerKeyExchange::serialize_record_into(
    std::uint16_t record_version, std::vector<std::uint8_t>& out) const {
  ByteWriter w(std::move(out));
  w.u8(static_cast<std::uint8_t>(ContentType::kHandshake));
  w.u16(record_version);
  {
    auto record = w.u16_length_scope();
    w.u8(static_cast<std::uint8_t>(HandshakeType::kServerKeyExchange));
    {
      auto handshake = w.u24_length_scope();
      w.u8(3);  // curve_type: named_curve
      w.u16(named_curve);
      w.u8(static_cast<std::uint8_t>(public_point.size()));
      w.bytes(public_point);
      w.u16(0x0401);  // signature algorithm: rsa_pkcs1_sha256 (stub)
      w.u16(static_cast<std::uint16_t>(signature.size()));
      w.bytes(signature);
    }
  }
  out = w.take();
}

EcdheServerKeyExchange EcdheServerKeyExchange::parse_record(
    std::span<const std::uint8_t> data) {
  return parse_body(unwrap_handshake(data, HandshakeType::kServerKeyExchange));
}

EcdheServerKeyExchange EcdheServerKeyExchange::stub(std::uint16_t curve) {
  EcdheServerKeyExchange ske;
  ske.named_curve = curve;
  ske.public_point.assign(33, 0x04);
  ske.signature.assign(64, 0x5a);
  return ske;
}

}  // namespace tls::wire
