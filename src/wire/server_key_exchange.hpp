// Minimal ECDHE ServerKeyExchange codec (RFC 4492 §5.4): enough structure
// to carry the server's chosen named curve on the wire, which is what the
// curve-usage analysis (§6.3.3) parses. Key material and signature are
// synthesized stubs — the simulator never computes ECDH.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wire/record.hpp"

namespace tls::wire {

struct EcdheServerKeyExchange {
  std::uint16_t named_curve = 23;
  std::vector<std::uint8_t> public_point;
  std::vector<std::uint8_t> signature;

  [[nodiscard]] std::vector<std::uint8_t> serialize_body() const;
  static EcdheServerKeyExchange parse_body(std::span<const std::uint8_t> body);
  [[nodiscard]] std::vector<std::uint8_t> serialize_record(
      std::uint16_t record_version) const;
  /// serialize_record into a reusable buffer: one pass, no intermediate
  /// body/fragment vectors. Byte-identical to serialize_record.
  void serialize_record_into(std::uint16_t record_version,
                             std::vector<std::uint8_t>& out) const;
  static EcdheServerKeyExchange parse_record(
      std::span<const std::uint8_t> data);

  /// Stub message for `curve` with deterministic filler key material.
  static EcdheServerKeyExchange stub(std::uint16_t curve);
};

}  // namespace tls::wire
