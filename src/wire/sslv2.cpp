#include "wire/sslv2.hpp"

namespace tls::wire {

std::vector<std::uint8_t> Sslv2ClientHello::serialize() const {
  ByteWriter body;
  body.u8(1);  // MSG-CLIENT-HELLO
  body.u16(version);
  body.u16(static_cast<std::uint16_t>(cipher_specs.size() * 3));
  body.u16(static_cast<std::uint16_t>(session_id.size()));
  body.u16(static_cast<std::uint16_t>(challenge.size()));
  for (const auto k : cipher_specs) body.u24(k);
  body.bytes(session_id);
  body.bytes(challenge);

  ByteWriter w;
  // Two-byte record header with the high bit set (no padding).
  w.u16(static_cast<std::uint16_t>(0x8000 | body.size()));
  w.bytes(body.data());
  return w.take();
}

Sslv2ClientHello Sslv2ClientHello::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const auto header = r.u16();
  if ((header & 0x8000) == 0) {
    throw ParseError(ParseErrorCode::kBadValue, "not an SSLv2 record");
  }
  const std::size_t len = header & 0x7fff;
  ByteReader body(r.bytes(len));
  r.expect_empty("sslv2 record");

  Sslv2ClientHello ch;
  const auto msg_type = body.u8();
  if (msg_type != 1) {
    throw ParseError(ParseErrorCode::kBadValue, "not an SSLv2 CLIENT-HELLO");
  }
  ch.version = body.u16();
  const auto cipher_len = body.u16();
  const auto sid_len = body.u16();
  const auto challenge_len = body.u16();
  if (cipher_len % 3 != 0) {
    throw ParseError(ParseErrorCode::kBadLength, "cipher spec bytes % 3");
  }
  ByteReader specs(body.bytes(cipher_len));
  while (!specs.empty()) ch.cipher_specs.push_back(specs.u24());
  const auto sid = body.bytes(sid_len);
  ch.session_id.assign(sid.begin(), sid.end());
  const auto chal = body.bytes(challenge_len);
  ch.challenge.assign(chal.begin(), chal.end());
  body.expect_empty("sslv2 client hello");
  return ch;
}

bool Sslv2ClientHello::looks_like(std::span<const std::uint8_t> data) {
  return data.size() >= 3 && (data[0] & 0x80) != 0 && data[2] == 1;
}

}  // namespace tls::wire
