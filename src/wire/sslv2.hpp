// SSLv2 CLIENT-HELLO (the pre-SSL3 record format). A small number of Notary
// connections (§5.1) still use SSLv2; the monitor must recognize the format.
// SSLv2 cipher specs are 3 bytes (kind); SSLv3-compatible hellos embed
// 2-byte TLS suites as 0x00XXXX.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wire/buffer.hpp"

namespace tls::wire {

struct Sslv2ClientHello {
  std::uint16_t version = 0x0002;
  std::vector<std::uint32_t> cipher_specs;  // 3-byte kinds
  std::vector<std::uint8_t> session_id;
  std::vector<std::uint8_t> challenge;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Sslv2ClientHello parse(std::span<const std::uint8_t> data);

  /// True when `data` begins with an SSLv2 record header carrying a
  /// CLIENT-HELLO (msb set two-byte length + msg type 1).
  static bool looks_like(std::span<const std::uint8_t> data);
};

/// Well-known SSLv2 cipher kinds.
namespace sslv2_ciphers {
inline constexpr std::uint32_t SSL_CK_RC4_128_WITH_MD5 = 0x010080;
inline constexpr std::uint32_t SSL_CK_RC4_128_EXPORT40_WITH_MD5 = 0x020080;
inline constexpr std::uint32_t SSL_CK_DES_64_CBC_WITH_MD5 = 0x060040;
inline constexpr std::uint32_t SSL_CK_DES_192_EDE3_CBC_WITH_MD5 = 0x0700c0;
}  // namespace sslv2_ciphers

}  // namespace tls::wire
