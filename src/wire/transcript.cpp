#include "wire/transcript.hpp"

#include "tlscore/cipher_suites.hpp"

namespace tls::wire {

namespace {

std::uint16_t record_version_for(std::uint16_t hello_version) {
  return hello_version <= 0x0301 ? hello_version : 0x0303;
}

std::vector<std::uint8_t> finished_record(std::uint16_t record_version) {
  HandshakeMessage m;
  m.type = HandshakeType::kFinished;
  m.body.assign(12, 0x0f);  // stub verify_data
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.legacy_version = record_version;
  rec.fragment = m.serialize();
  return rec.serialize();
}

void append(std::vector<std::uint8_t>& out,
            const std::vector<std::uint8_t>& bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

/// True when the suite carries no server certificate (anonymous kex or
/// the NULL_WITH_NULL_NULL placeholder).
bool certificate_free(std::uint16_t suite) {
  const auto* info = tls::core::find_cipher_suite(suite);
  if (info == nullptr) return false;
  return tls::core::is_anonymous(*info) || suite == 0x0000;
}

}  // namespace

std::vector<std::uint8_t> certificate_message_body(std::size_t cert_count,
                                                   std::size_t cert_size) {
  ByteWriter w;
  {
    auto list = w.u24_length_scope();
    for (std::size_t i = 0; i < cert_count; ++i) {
      auto cert = w.u24_length_scope();
      for (std::size_t b = 0; b < cert_size; ++b) {
        w.u8(static_cast<std::uint8_t>(0x30 + i + b % 16));  // DER filler
      }
    }
  }
  return w.take();
}

std::vector<std::uint8_t> change_cipher_spec_record(
    std::uint16_t record_version) {
  Record rec;
  rec.type = ContentType::kChangeCipherSpec;
  rec.legacy_version = record_version;
  rec.fragment = {1};
  return rec.serialize();
}

namespace {

ParsedFlight parse_flight_impl(std::span<const std::uint8_t> stream,
                               bool lenient) {
  ParsedFlight flight;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    std::size_t consumed = 0;
    Record rec;
    try {
      rec = Record::parse_prefix(stream.subspan(offset), &consumed);
    } catch (const ParseError& e) {
      if (!lenient) throw;
      flight.stream_error = e.code();
      return flight;
    }
    offset += consumed;
    switch (rec.type) {
      case ContentType::kChangeCipherSpec:
        flight.change_cipher_spec = true;
        break;
      case ContentType::kAlert: {
        if (rec.fragment.size() == 2 &&
            (rec.fragment[0] == 1 || rec.fragment[0] == 2)) {
          Alert a;
          a.level = static_cast<AlertLevel>(rec.fragment[0]);
          a.description = static_cast<AlertDescription>(rec.fragment[1]);
          flight.alert = a;
        }
        break;
      }
      case ContentType::kHandshake: {
        try {
          const HandshakeMessage m = HandshakeMessage::parse(rec.fragment);
          switch (m.type) {
            case HandshakeType::kClientHello:
              flight.client_hello = ClientHello::parse_body(m.body);
              break;
            case HandshakeType::kServerHello:
              flight.server_hello = ServerHello::parse_body(m.body);
              break;
            case HandshakeType::kServerKeyExchange:
              flight.server_key_exchange =
                  EcdheServerKeyExchange::parse_body(m.body);
              break;
            case HandshakeType::kCertificate:
              ++flight.certificate_count;
              break;
            default:
              break;  // CKE, Finished, HelloRequest: nothing to decode
          }
        } catch (const ParseError&) {
          ++flight.unparsed_handshakes;
        }
        break;
      }
      default:
        break;  // application data / heartbeat: opaque to the tap
    }
    flight.records.push_back(std::move(rec));
  }
  return flight;
}

}  // namespace

ParsedFlight parse_flight(std::span<const std::uint8_t> stream) {
  return parse_flight_impl(stream, /*lenient=*/false);
}

ParsedFlight parse_flight_lenient(std::span<const std::uint8_t> stream) {
  return parse_flight_impl(stream, /*lenient=*/true);
}

std::vector<std::uint8_t> client_flight(const ClientHello& hello,
                                        bool established) {
  const std::uint16_t rv = record_version_for(hello.legacy_version);
  std::vector<std::uint8_t> out = hello.serialize_record();
  if (established) {
    HandshakeMessage cke;
    cke.type = HandshakeType::kClientKeyExchange;
    cke.body.assign(48, 0x5a);  // stub key material
    Record rec;
    rec.type = ContentType::kHandshake;
    rec.legacy_version = rv;
    rec.fragment = cke.serialize();
    append(out, rec.serialize());
    append(out, change_cipher_spec_record(rv));
    append(out, finished_record(rv));
  }
  return out;
}

std::vector<std::uint8_t> server_flight(
    const ServerHello& hello,
    const std::optional<EcdheServerKeyExchange>& ske, bool established) {
  const std::uint16_t rv = record_version_for(hello.legacy_version);
  std::vector<std::uint8_t> out = hello.serialize_record();

  if (!certificate_free(hello.cipher_suite)) {
    Record cert;
    cert.type = ContentType::kHandshake;
    cert.legacy_version = rv;
    HandshakeMessage m;
    m.type = HandshakeType::kCertificate;
    m.body = certificate_message_body();
    cert.fragment = m.serialize();
    append(out, cert.serialize());
  }
  if (ske.has_value()) {
    append(out, ske->serialize_record(rv));
  }
  {
    Record done;
    done.type = ContentType::kHandshake;
    done.legacy_version = rv;
    HandshakeMessage m;
    m.type = HandshakeType::kServerHelloDone;
    done.fragment = m.serialize();
    append(out, done.serialize());
  }
  if (established) {
    append(out, change_cipher_spec_record(rv));
    append(out, finished_record(rv));
  }
  return out;
}

std::vector<std::uint8_t> server_failure_flight(
    const std::optional<ServerHello>& hello, const Alert& alert) {
  std::vector<std::uint8_t> out;
  std::uint16_t rv = 0x0301;
  if (hello.has_value()) {
    rv = record_version_for(hello->legacy_version);
    out = hello->serialize_record();
  }
  append(out, alert.serialize_record(rv));
  return out;
}

}  // namespace tls::wire
