// Full handshake flights. The Notary's establishment criterion (§5.5: "our
// logs indicate that at least some of the sessions were successfully
// established (both sides sent a Change Cipher Spec)") needs more than the
// two hellos: this module synthesizes and parses complete per-direction
// record streams — ClientHello .. Finished on one side, ServerHello ..
// Finished on the other — with stub certificates and key material.
#pragma once

#include <optional>
#include <vector>

#include "wire/alert.hpp"
#include "wire/client_hello.hpp"
#include "wire/server_hello.hpp"
#include "wire/server_key_exchange.hpp"

namespace tls::wire {

/// Opaque-body handshake message helpers (stub contents).
std::vector<std::uint8_t> certificate_message_body(std::size_t cert_count = 1,
                                                   std::size_t cert_size = 96);
std::vector<std::uint8_t> change_cipher_spec_record(
    std::uint16_t record_version);

/// Everything a passive tap can pull out of one direction's record stream.
struct ParsedFlight {
  std::vector<Record> records;
  std::optional<ClientHello> client_hello;
  std::optional<ServerHello> server_hello;
  std::optional<EcdheServerKeyExchange> server_key_exchange;
  std::optional<Alert> alert;
  bool change_cipher_spec = false;
  std::size_t certificate_count = 0;
  /// Records whose handshake bodies failed to parse (still counted).
  std::size_t unparsed_handshakes = 0;
  /// Record-layer corruption hit by the lenient parser (parse_flight throws
  /// instead); everything before the corrupt record was still decoded.
  std::optional<ParseErrorCode> stream_error;
};

/// Splits a byte stream into records and decodes what it recognizes.
/// Throws ParseError only on record-layer corruption; unknown or
/// undecodable handshake bodies are tolerated and counted.
ParsedFlight parse_flight(std::span<const std::uint8_t> stream);

/// Graceful-degradation variant for hostile taps: never throws. Stops at
/// the first record-layer corruption, salvages the parsed prefix, and
/// reports the error in ParsedFlight::stream_error.
ParsedFlight parse_flight_lenient(std::span<const std::uint8_t> stream);

/// Client-side flight for a successful pre-1.3 handshake:
/// ClientHello, ClientKeyExchange, ChangeCipherSpec, Finished.
std::vector<std::uint8_t> client_flight(const ClientHello& hello,
                                        bool established);

/// Server-side flight: ServerHello, Certificate (unless anonymous/NULL-auth
/// suite), optional ServerKeyExchange (EC kex), ServerHelloDone, then
/// ChangeCipherSpec + Finished when `established`. For failures pass the
/// alert instead via server_failure_flight.
std::vector<std::uint8_t> server_flight(
    const ServerHello& hello,
    const std::optional<EcdheServerKeyExchange>& ske, bool established);

/// A failing server's answer: optional ServerHello (spec-violation case)
/// followed by a fatal alert.
std::vector<std::uint8_t> server_failure_flight(
    const std::optional<ServerHello>& hello, const Alert& alert);

}  // namespace tls::wire
