#include <gtest/gtest.h>

#include "handshake/negotiate.hpp"
#include "wire/alert.hpp"

namespace tls::wire {
namespace {

TEST(Alert, RoundTrip) {
  Alert a;
  a.level = AlertLevel::kFatal;
  a.description = AlertDescription::kProtocolVersion;
  const auto bytes = a.serialize_record(0x0301);
  ASSERT_EQ(bytes.size(), 7u);
  EXPECT_EQ(bytes[0], 21);  // alert content type
  EXPECT_EQ(Alert::parse_record(bytes), a);
}

TEST(Alert, RejectsWrongContentType) {
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.fragment = {2, 40};
  EXPECT_THROW(Alert::parse_record(rec.serialize()), ParseError);
}

TEST(Alert, RejectsBadBody) {
  Record rec;
  rec.type = ContentType::kAlert;
  rec.fragment = {2};
  EXPECT_THROW(Alert::parse_record(rec.serialize()), ParseError);
  rec.fragment = {3, 40};  // bad level
  EXPECT_THROW(Alert::parse_record(rec.serialize()), ParseError);
}

TEST(Alert, DescriptionNames) {
  EXPECT_EQ(alert_description_name(AlertDescription::kHandshakeFailure),
            "handshake_failure");
  EXPECT_EQ(alert_description_name(AlertDescription::kProtocolVersion),
            "protocol_version");
  EXPECT_EQ(alert_description_name(static_cast<AlertDescription>(200)),
            "unknown");
}

TEST(AlertFor, MapsFailureReasons) {
  using tls::handshake::FailureReason;
  using tls::handshake::alert_for;
  EXPECT_EQ(alert_for(FailureReason::kNoCommonVersion).description,
            AlertDescription::kProtocolVersion);
  EXPECT_EQ(alert_for(FailureReason::kNoCommonCipher).description,
            AlertDescription::kHandshakeFailure);
  EXPECT_EQ(
      alert_for(FailureReason::kClientRejectedUnofferedSuite).description,
      AlertDescription::kIllegalParameter);
  EXPECT_THROW(alert_for(FailureReason::kNone), std::logic_error);
}

}  // namespace
}  // namespace tls::wire
