#include <gtest/gtest.h>

#include "tlscore/rng.hpp"
#include "wire/buffer.hpp"

namespace tls::wire {
namespace {

TEST(ByteReader, Primitives) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                               0x07, 0x08, 0x09, 0x0a};
  ByteReader r(data);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u24(), 0x040506u);
  EXPECT_EQ(r.u32(), 0x0708090au);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, TruncationThrows) {
  const std::uint8_t data[] = {0x01};
  ByteReader r(data);
  r.u8();
  EXPECT_THROW(r.u8(), ParseError);
  ByteReader r2(data);
  EXPECT_THROW(r2.u16(), ParseError);
  try {
    ByteReader r3(data);
    r3.u32();
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kTruncated);
  }
}

TEST(ByteReader, LengthPrefixed) {
  const std::uint8_t data[] = {0x02, 0xaa, 0xbb, 0x00, 0x01, 0xcc};
  ByteReader r(data);
  const auto a = r.length_prefixed_u8();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1], 0xbb);
  const auto b = r.length_prefixed_u16();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 0xcc);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, LengthPrefixOverrunThrows) {
  const std::uint8_t data[] = {0x05, 0xaa};
  ByteReader r(data);
  EXPECT_THROW(r.length_prefixed_u8(), ParseError);
}

TEST(ByteReader, U16ListRejectsOddLength) {
  const std::uint8_t data[] = {0x00, 0x03, 0x01, 0x02, 0x03};
  ByteReader r(data);
  try {
    r.u16_list_u16len();
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kBadLength);
  }
}

TEST(ByteReader, ExpectEmpty) {
  const std::uint8_t data[] = {0x01, 0x02};
  ByteReader r(data);
  r.u8();
  try {
    r.expect_empty("test");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kTrailingBytes);
  }
  r.u8();
  EXPECT_NO_THROW(r.expect_empty("test"));
}

TEST(ByteWriter, Primitives) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u24(0x040506);
  w.u32(0x0708090a);
  const auto& out = w.data();
  const std::uint8_t expected[] = {0x01, 0x02, 0x03, 0x04, 0x05,
                                   0x06, 0x07, 0x08, 0x09, 0x0a};
  ASSERT_EQ(out.size(), sizeof(expected));
  EXPECT_TRUE(std::equal(out.begin(), out.end(), expected));
}

TEST(ByteWriter, LengthScopePatchesPrefix) {
  ByteWriter w;
  {
    auto scope = w.u16_length_scope();
    w.u8(0xaa);
    w.u8(0xbb);
    w.u8(0xcc);
  }
  const auto& out = w.data();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 0x00);
  EXPECT_EQ(out[1], 0x03);
}

TEST(ByteWriter, NestedLengthScopes) {
  ByteWriter w;
  {
    auto outer = w.u24_length_scope();
    w.u8(0x11);
    {
      auto inner = w.u8_length_scope();
      w.u16(0x2233);
    }
  }
  const auto& out = w.data();
  // u24 prefix (3) + 0x11 + u8 prefix (1) + u16 (2)
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[2], 4);     // outer length
  EXPECT_EQ(out[4], 2);     // inner length
}

TEST(ByteWriter, U16ListRoundTrip) {
  const std::uint16_t values[] = {0xc02f, 0x009c, 0x0005};
  ByteWriter w;
  w.u16_list_u16len(values);
  ByteReader r(w.data());
  const auto parsed = r.u16_list_u16len();
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], 0xc02f);
  EXPECT_EQ(parsed[2], 0x0005);
}

TEST(ByteWriter, PropertyRandomRoundTrip) {
  tls::core::Rng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint16_t> values(rng.below(40));
    for (auto& v : values) v = static_cast<std::uint16_t>(rng.next());
    ByteWriter w;
    w.u16_list_u16len(values);
    ByteReader r(w.data());
    EXPECT_EQ(r.u16_list_u16len(), values);
    EXPECT_TRUE(r.empty());
  }
}

}  // namespace
}  // namespace tls::wire
