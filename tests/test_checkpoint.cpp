// Durable checkpoint/resume (core/checkpoint.hpp). Built as its own binary
// (tls_checkpoint_tests) with a custom main: when invoked with
// `--checkpoint-child`, the process re-enters itself as a study worker that
// journals an export and — via StudyOptions::checkpoint_kill_after_frames —
// SIGKILLs itself mid-journal. The gtest side forks those children to drive
// a real crash matrix: murdered at several journal offsets, resumed, and
// byte-compared against an uninterrupted reference at multiple thread
// counts and fault rates.
//
// Also covered in-process: frame/manifest/probe codecs, the options
// digest, journal replay/quarantine mechanics, frame-fault soak, and the
// stuck-shard watchdog.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/study.hpp"
#include "faults/injector.hpp"
#include "wire/errors.hpp"

namespace fs = std::filesystem;

namespace {

using tls::core::Month;
using tls::study::CheckpointManifest;
using tls::study::FrameHeader;
using tls::study::FrameKind;
using tls::study::JournalMode;
using tls::study::LongitudinalStudy;
using tls::study::RunJournal;
using tls::study::StudyOptions;
using tls::wire::ParseError;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string chart_csv(LongitudinalStudy& study) {
  std::string all;
  for (const auto& chart :
       {study.figure1_versions(), study.figure2_negotiated_classes(),
        study.figure3_advertised_classes(),
        study.figure4_fingerprint_support(),
        study.figure5_relative_positions(), study.figure6_rc4_advertised(),
        study.figure7_weak_advertised(), study.figure8_key_exchange(),
        study.figure9_aead_negotiated(), study.figure10_aead_advertised()}) {
    all += tls::analysis::to_csv(chart);
  }
  return all;
}

/// The one option set shared by parent references and forked children —
/// crash matrix comparisons are only meaningful if both sides agree on it.
StudyOptions matrix_options(int fault_milli) {
  StudyOptions o;
  o.connections_per_month = 300;
  o.full_catalog = false;
  o.window = {Month(2014, 6), Month(2015, 3)};
  if (fault_milli > 0) {
    o.faults = tls::faults::FaultConfig::uniform(fault_milli / 1000.0);
  }
  return o;
}

/// Small passive-only option set for the in-process journal tests.
StudyOptions journal_options(const std::string& ckpt_dir) {
  auto o = matrix_options(0);
  o.window = {Month(2015, 1), Month(2015, 6)};
  o.checkpoint_dir = ckpt_dir;
  return o;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> frame_files(const fs::path& ckpt) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(ckpt / "frames")) {
    out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- child side of the crash matrix ------------------------------------

/// `<exe> --checkpoint-child <ckpt> <threads> <fault_milli> <kill> <out>
/// <group_frames>`: journals an export, possibly SIGKILLing itself after
/// <kill> durable frames. group_frames == 0 selects the legacy per-frame
/// store; > 0 selects the group-commit journal with that flush threshold.
int run_checkpoint_child(int argc, char** argv) {
  if (argc != 8) return 2;
  auto opts = matrix_options(std::atoi(argv[4]));
  opts.checkpoint_dir = argv[2];
  opts.resume = true;  // empty dir on the first pass; replay afterwards
  opts.threads = static_cast<unsigned>(std::atoi(argv[3]));
  opts.checkpoint_kill_after_frames =
      static_cast<std::size_t>(std::atol(argv[5]));
  const long group_frames = std::atol(argv[7]);
  if (group_frames > 0) {
    opts.journal_mode = JournalMode::kGrouped;
    opts.journal_group_frames = static_cast<std::size_t>(group_frames);
  } else {
    opts.journal_mode = JournalMode::kPerFrame;
  }
  LongitudinalStudy study(opts);
  study.export_figures(argv[6]);
  return 0;
}

/// `<exe> --signal-drain-child <ckpt> <term_after> <out>`: journals an
/// export in grouped mode with UNREACHABLE group thresholds (the linger
/// buffer can never commit organically), arranges a SIGTERM after
/// <term_after> appends, and handles it exactly like study_cli does —
/// sigwait watcher, drain_checkpoint(), _Exit(0). Exits 1 if the export
/// completes without the signal ever firing, so the parent can tell a
/// dead seam from a successful drain.
int run_signal_drain_child(int argc, char** argv) {
  if (argc != 5) return 2;
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  auto opts = matrix_options(0);
  opts.checkpoint_dir = argv[2];
  opts.resume = true;
  opts.threads = 4;
  opts.checkpoint_term_after_frames =
      static_cast<std::size_t>(std::atol(argv[3]));
  opts.journal_mode = JournalMode::kGrouped;
  // Thresholds no export of this size can reach: only a drain (flush +
  // fsync) can make the lingering frames durable, so every frame the
  // parent later replays is proof the signal path flushed.
  opts.journal_group_frames = 1u << 20;
  opts.journal_group_ms = 600'000;

  LongitudinalStudy study(opts);
  std::atomic<bool> done{false};
  std::thread watcher([&sigs, &study, &done] {
    int sig = 0;
    sigwait(&sigs, &sig);
    if (done.load()) return;
    study.drain_checkpoint();
    std::_Exit(0);  // mid-export, like study_cli: drained, leave now
  });
  study.export_figures(argv[4]);
  done.store(true);
  pthread_kill(watcher.native_handle(), SIGTERM);
  watcher.join();
  return 1;  // the seam was supposed to interrupt the export
}

int spawn_drain_child(const std::string& ckpt, const std::string& out,
                      std::size_t term_after) {
  const pid_t pid = fork();
  if (pid == 0) {
    const std::string term_s = std::to_string(term_after);
    const char* child_argv[] = {"tls_checkpoint_tests",
                                "--signal-drain-child",
                                ckpt.c_str(),
                                term_s.c_str(),
                                out.c_str(),
                                nullptr};
    execv("/proc/self/exe", const_cast<char* const*>(child_argv));
    _exit(127);  // exec failed
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

/// Forks + re-execs this binary in child mode; returns the wait status.
int spawn_child(const std::string& ckpt, const std::string& out,
                unsigned threads, int fault_milli, std::size_t kill_after,
                long group_frames) {
  const pid_t pid = fork();
  if (pid == 0) {
    const std::string threads_s = std::to_string(threads);
    const std::string fault_s = std::to_string(fault_milli);
    const std::string kill_s = std::to_string(kill_after);
    const std::string group_s = std::to_string(group_frames);
    const char* child_argv[] = {"tls_checkpoint_tests",
                                "--checkpoint-child",
                                ckpt.c_str(),
                                threads_s.c_str(),
                                fault_s.c_str(),
                                kill_s.c_str(),
                                out.c_str(),
                                group_s.c_str(),
                                nullptr};
    execv("/proc/self/exe", const_cast<char* const*>(child_argv));
    _exit(127);  // exec failed
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

// ---- codecs -------------------------------------------------------------

TEST(CheckpointCodec, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 77};
  const FrameHeader header{FrameKind::kScanSegment, 24184u, 3u};
  const auto bytes = tls::study::encode_frame(0xdeadbeefcafe1234ull, header,
                                              payload);
  const auto frame = tls::study::decode_frame(bytes);
  EXPECT_EQ(frame.header.kind, FrameKind::kScanSegment);
  EXPECT_EQ(frame.header.month_index, 24184u);
  EXPECT_EQ(frame.header.slot, 3u);
  EXPECT_EQ(frame.options_digest, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(frame.payload, payload);
  // Empty payloads are legal frames.
  const auto empty = tls::study::encode_frame(1, {}, {});
  EXPECT_TRUE(tls::study::decode_frame(empty).payload.empty());
}

TEST(CheckpointCodec, FrameTamperingIsAlwaysDetected) {
  const std::vector<std::uint8_t> payload(64, 0xab);
  const auto bytes = tls::study::encode_frame(
      42, {FrameKind::kPassiveShard, 10, 2}, payload);
  // Any single bit flip anywhere in the frame breaks either a structural
  // check or the trailing checksum.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x20;
    EXPECT_THROW((void)tls::study::decode_frame(bad), ParseError)
        << "byte " << i;
  }
  // Every truncation (torn write) is detected.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)tls::study::decode_frame({bytes.data(), len}),
                 ParseError)
        << "prefix " << len;
  }
  // Trailing garbage after a valid frame is rejected.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)tls::study::decode_frame(padded), ParseError);
}

TEST(CheckpointCodec, OversizedDeclaredLengthRejectedBeforeAllocation) {
  const std::vector<std::uint8_t> payload(2048, 0x5a);
  const auto bytes = tls::study::encode_frame(
      7, {FrameKind::kPassiveShard, 1, 2}, payload);
  // At or above the declared size the frame decodes normally.
  EXPECT_EQ(tls::study::decode_frame(bytes).payload.size(), payload.size());
  EXPECT_EQ(tls::study::decode_frame(bytes, 2048).payload.size(), 2048u);
  // One byte under it: rejected as kBadLength, not kTruncated/kBadValue —
  // the length gate fires before the payload is ever materialized.
  try {
    (void)tls::study::decode_frame(bytes, 2047);
    FAIL() << "oversized declared payload must throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), tls::wire::ParseErrorCode::kBadLength);
  }
  // A forged astronomical length field (all 0xff — endian-proof) dies on
  // the same pre-allocation guard under the default cap; without it the
  // reader would chase a 4 GiB claim through a 2 KiB frame.
  auto forged = bytes;
  // payload_len is the u32 after magic(4) + version(4) + digest(8) +
  // kind(1) + month(4) + slot(4) = offset 25.
  for (std::size_t i = 25; i < 29; ++i) forged[i] = 0xff;
  try {
    (void)tls::study::decode_frame(forged);
    FAIL() << "forged length must throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), tls::wire::ParseErrorCode::kBadLength);
  }
}

TEST(CheckpointCodec, ManifestRoundTripAndVersionGate) {
  CheckpointManifest m;
  m.options_digest = 0x1122334455667788ull;
  m.seed = 99;
  m.window_begin = 24170;
  m.window_end = 24185;
  m.shards_per_month = 8;
  m.connections_per_month = 1200;
  m.scan_begin = 24187;
  m.scan_end = 24220;
  m.scan_segments = 6;
  const auto bytes = tls::study::encode_manifest(m);
  EXPECT_EQ(tls::study::decode_manifest(bytes), m);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)tls::study::decode_manifest({bytes.data(), len}),
                 ParseError);
  }
  auto foreign = m;
  foreign.format_version = tls::study::kCheckpointFormatVersion + 1;
  EXPECT_THROW((void)tls::study::decode_manifest(
                   tls::study::encode_manifest(foreign)),
               ParseError);
}

TEST(CheckpointCodec, SegmentProbeRoundTripIsBitExact) {
  tls::scan::SegmentProbe p;
  p.included = true;
  p.reached = true;
  p.abandoned = false;
  p.weight = 0.12345678901234567;  // exercises full double precision
  p.attempts = 17;
  p.retries = 4;
  p.ssl3 = 0.25;
  p.expo = 1e-9;
  p.rc4 = 0.5;
  p.cbc = 0.75;
  p.aead = 0.125;
  p.tdes = 0.0625;
  p.rc4_support = 0.3;
  p.rc4_only = 0.01;
  p.heartbeat = 0.6;
  p.heartbleed = 0.07;
  p.tls13 = 0.001;
  const auto bytes = tls::study::encode_segment_probe(p);
  const auto back = tls::study::decode_segment_probe(bytes);
  EXPECT_EQ(back.included, p.included);
  EXPECT_EQ(back.reached, p.reached);
  EXPECT_EQ(back.abandoned, p.abandoned);
  EXPECT_EQ(back.weight, p.weight);  // bit-exact, not approximate
  EXPECT_EQ(back.attempts, p.attempts);
  EXPECT_EQ(back.retries, p.retries);
  EXPECT_EQ(back.ssl3, p.ssl3);
  EXPECT_EQ(back.expo, p.expo);
  EXPECT_EQ(back.rc4, p.rc4);
  EXPECT_EQ(back.cbc, p.cbc);
  EXPECT_EQ(back.aead, p.aead);
  EXPECT_EQ(back.tdes, p.tdes);
  EXPECT_EQ(back.rc4_support, p.rc4_support);
  EXPECT_EQ(back.rc4_only, p.rc4_only);
  EXPECT_EQ(back.heartbeat, p.heartbeat);
  EXPECT_EQ(back.heartbleed, p.heartbleed);
  EXPECT_EQ(back.tls13, p.tls13);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)tls::study::decode_segment_probe({bytes.data(), len}),
                 ParseError);
  }
  auto bad_flag = bytes;
  bad_flag[0] = 2;  // bools must be 0/1
  EXPECT_THROW((void)tls::study::decode_segment_probe(bad_flag), ParseError);
}

TEST(CheckpointCodec, OptionsDigestTracksByteAffectingFieldsOnly) {
  const auto base = matrix_options(0);
  const auto digest = tls::study::options_digest(base);
  EXPECT_EQ(tls::study::options_digest(base), digest);  // deterministic

  // Fields that change exported bytes must change the digest.
  auto o = base;
  o.seed = 43;
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.connections_per_month += 1;
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.window.end_month = Month(2015, 4);
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.full_catalog = !o.full_catalog;
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.faults = tls::faults::FaultConfig::uniform(0.10);
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.fault_seed ^= 1;
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.shards_per_month = 4;
  EXPECT_NE(tls::study::options_digest(o), digest);
  o = base;
  o.scan_policy.retry.max_attempts += 1;
  EXPECT_NE(tls::study::options_digest(o), digest);

  // Pure accelerator / checkpoint knobs must NOT orphan a journal.
  o = base;
  o.threads = 8;
  o.observe_cache_entries = 0;
  o.fast_observe = false;
  o.checkpoint_dir = "/anywhere";
  o.resume = true;
  o.task_deadline_us = 12345;
  o.checkpoint_faults = tls::faults::FaultConfig::frames_only(0.5);
  o.checkpoint_fault_seed ^= 1;
  o.checkpoint_kill_after_frames = 3;
  // Journal-mode knobs route the same frames through a different store;
  // switching them mid-project must resume, not orphan.
  o.journal_mode = JournalMode::kPerFrame;
  o.journal_group_frames = 1;
  o.journal_group_ms = 0;
  EXPECT_EQ(tls::study::options_digest(o), digest);
}

// ---- journal mechanics (direct RunJournal use) --------------------------

TEST(RunJournal, AppendThenResumeReplaysVerifiedFrames) {
  const auto dir = fresh_dir("journal_basic");
  CheckpointManifest manifest;
  manifest.options_digest = 7;
  const std::vector<std::uint8_t> pay_a = {1, 2, 3};
  const std::vector<std::uint8_t> pay_b = {9};
  {
    RunJournal journal({dir.string(), /*resume=*/false, manifest});
    journal.append(FrameKind::kPassiveShard, 100, 0, pay_a);
    journal.append(FrameKind::kScanSegment, 200, 5, pay_b);
  }
  RunJournal resumed({dir.string(), /*resume=*/true, manifest});
  const auto report = resumed.snapshot_report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 2u);
  EXPECT_EQ(report.frames_corrupt, 0u);
  ASSERT_NE(resumed.replayed(FrameKind::kPassiveShard, 100, 0), nullptr);
  EXPECT_EQ(*resumed.replayed(FrameKind::kPassiveShard, 100, 0), pay_a);
  ASSERT_NE(resumed.replayed(FrameKind::kScanSegment, 200, 5), nullptr);
  EXPECT_EQ(*resumed.replayed(FrameKind::kScanSegment, 200, 5), pay_b);
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 100, 1), nullptr);
  fs::remove_all(dir);
}

TEST(RunJournal, ColdStartWipesExistingFrames) {
  const auto dir = fresh_dir("journal_wipe");
  CheckpointManifest manifest;
  {
    RunJournal journal({dir.string(), false, manifest});
    journal.append(FrameKind::kPassiveShard, 1, 0, {{1}});
  }
  RunJournal cold({dir.string(), /*resume=*/false, manifest});
  EXPECT_EQ(cold.replayed(FrameKind::kPassiveShard, 1, 0), nullptr);
  EXPECT_FALSE(cold.snapshot_report().resumed);
  EXPECT_TRUE(frame_files(dir).empty());
  fs::remove_all(dir);
}

TEST(RunJournal, DamagedFramesAreQuarantinedNeverFatal) {
  const auto dir = fresh_dir("journal_damage");
  CheckpointManifest manifest;
  manifest.options_digest = 11;
  {
    RunJournal journal({dir.string(), false, manifest});
    for (std::uint32_t s = 0; s < 4; ++s) {
      journal.append(FrameKind::kPassiveShard, 50, s,
                     std::vector<std::uint8_t>(32, std::uint8_t(s)));
    }
  }
  auto files = frame_files(dir);
  ASSERT_EQ(files.size(), 4u);
  {  // bit-rot frame 0
    auto bytes = slurp(files[0].string());
    bytes[bytes.size() / 2] ^= 0x01;
    std::ofstream(files[0], std::ios::binary) << bytes;
  }
  {  // tear frame 1 (simulated partial write that was renamed by old code)
    auto bytes = slurp(files[1].string());
    std::ofstream(files[1], std::ios::binary)
        << bytes.substr(0, bytes.size() / 3);
  }
  {  // a crash mid-write leaves a .tmp behind
    std::ofstream(dir / "frames" / "p_000050_0009.frame.tmp") << "partial";
  }
  {  // frame 2 rewritten under a different options digest
    const auto foreign = tls::study::encode_frame(
        manifest.options_digest + 1, {FrameKind::kPassiveShard, 50, 2},
        std::vector<std::uint8_t>(8, 0xcc));
    std::ofstream(files[2], std::ios::binary)
        .write(reinterpret_cast<const char*>(foreign.data()),
               static_cast<std::streamsize>(foreign.size()));
  }

  RunJournal resumed({dir.string(), /*resume=*/true, manifest});
  const auto report = resumed.snapshot_report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 1u);  // only frame 3 survived
  EXPECT_EQ(report.frames_corrupt, 2u);   // bit-rot + tear
  EXPECT_EQ(report.frames_torn, 1u);      // the .tmp
  EXPECT_EQ(report.frames_mismatched, 1u);
  EXPECT_EQ(report.quarantined.size(), 4u);
  for (const auto& q : report.quarantined) {
    EXPECT_TRUE(fs::exists(q)) << q;
  }
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 50, 0), nullptr);
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 50, 1), nullptr);
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 50, 2), nullptr);
  EXPECT_NE(resumed.replayed(FrameKind::kPassiveShard, 50, 3), nullptr);
  fs::remove_all(dir);
}

TEST(RunJournal, FramesAboveConfiguredMaxAreQuarantinedNotFatal) {
  const auto dir = fresh_dir("journal_maxlen");
  CheckpointManifest manifest;
  manifest.options_digest = 5;
  {
    RunJournal journal({dir.string(), /*resume=*/false, manifest});
    journal.append(FrameKind::kPassiveShard, 9, 0,
                   std::vector<std::uint8_t>(4096, 1));
    journal.append(FrameKind::kPassiveShard, 9, 1,
                   std::vector<std::uint8_t>(16, 2));
  }
  // Replay under a 1 KiB cap: the 4 KiB frame is booked corrupt and
  // quarantined (taxonomy, not abort); the small frame still replays.
  RunJournal::Config strict{dir.string(), /*resume=*/true, manifest};
  strict.max_frame_bytes = 1024;
  RunJournal resumed(std::move(strict));
  const auto report = resumed.snapshot_report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_EQ(report.frames_corrupt, 1u);
  EXPECT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 9, 0), nullptr);
  EXPECT_NE(resumed.replayed(FrameKind::kPassiveShard, 9, 1), nullptr);
  fs::remove_all(dir);
}

TEST(RunJournal, ManifestMismatchInvalidatesEveryFrame) {
  const auto dir = fresh_dir("journal_mismatch");
  CheckpointManifest manifest;
  manifest.options_digest = 1;
  manifest.seed = 42;
  {
    RunJournal journal({dir.string(), false, manifest});
    journal.append(FrameKind::kPassiveShard, 7, 0, {{1, 2}});
  }
  auto other = manifest;
  other.seed = 43;
  other.options_digest = 2;
  RunJournal resumed({dir.string(), /*resume=*/true, other});
  const auto report = resumed.snapshot_report();
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 0u);
  EXPECT_EQ(report.frames_mismatched, 1u);
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 7, 0), nullptr);
  // The journal was re-stamped for the new run: appending then resuming
  // under `other` works.
  resumed.append(FrameKind::kPassiveShard, 7, 0, {{3, 4}});
  RunJournal again({dir.string(), /*resume=*/true, other});
  EXPECT_TRUE(again.snapshot_report().resumed);
  ASSERT_NE(again.replayed(FrameKind::kPassiveShard, 7, 0), nullptr);
  fs::remove_all(dir);
}

// ---- study-level behaviour ----------------------------------------------

TEST(CheckpointStudy, JournalingChangesNoExportedByte) {
  const auto ckpt = fresh_dir("study_onoff_ckpt");
  const auto out_plain = fresh_dir("study_onoff_plain");
  const auto out_journaled = fresh_dir("study_onoff_journaled");

  auto plain_opts = matrix_options(0);
  LongitudinalStudy plain(plain_opts);
  const auto plain_files = plain.export_figures(out_plain.string());
  ASSERT_EQ(plain_files.size(), 11u);

  auto jopts = plain_opts;
  jopts.checkpoint_dir = ckpt.string();
  jopts.threads = 8;
  LongitudinalStudy journaled(jopts);
  const auto journaled_files = journaled.export_figures(out_journaled.string());
  ASSERT_EQ(journaled_files.size(), plain_files.size());
  for (std::size_t i = 0; i < plain_files.size(); ++i) {
    EXPECT_EQ(slurp(journaled_files[i]), slurp(plain_files[i]))
        << plain_files[i];
  }

  // The journal actually materialized — manifest plus, in the default
  // grouped mode, checksummed groups in the segment store (the legacy
  // frames/ dir stays empty unless the writer degrades).
  EXPECT_TRUE(fs::exists(ckpt / "MANIFEST"));
  const auto report = journaled.recovery();
  EXPECT_FALSE(report.resumed);
  EXPECT_GT(report.tasks_recomputed, 0u);
  EXPECT_EQ(report.tasks_skipped, 0u);
  EXPECT_GT(report.groups_committed, 0u);
  EXPECT_FALSE(report.degraded_per_frame);
  EXPECT_TRUE(frame_files(ckpt).empty());
  EXPECT_TRUE(fs::exists(ckpt / "segments"));

  // Resume in a fresh process-equivalent: every task served from journal.
  auto ropts = jopts;
  ropts.resume = true;
  ropts.threads = 0;  // resume across thread counts, same bytes
  const auto out_resumed = fresh_dir("study_onoff_resumed");
  LongitudinalStudy resumed(ropts);
  const auto resumed_files = resumed.export_figures(out_resumed.string());
  for (std::size_t i = 0; i < plain_files.size(); ++i) {
    EXPECT_EQ(slurp(resumed_files[i]), slurp(plain_files[i]));
  }
  const auto rreport = resumed.recovery();
  EXPECT_TRUE(rreport.resumed);
  EXPECT_EQ(rreport.tasks_recomputed, 0u);
  EXPECT_EQ(rreport.tasks_skipped, report.tasks_recomputed);
  EXPECT_EQ(rreport.frames_replayed, report.tasks_recomputed);

  for (const auto& d : {ckpt, out_plain, out_journaled, out_resumed}) {
    fs::remove_all(d);
  }
}

TEST(CheckpointStudy, CorruptFramesAreRecomputedToIdenticalBytes) {
  const auto ckpt = fresh_dir("study_corrupt");
  auto opts = journal_options(ckpt.string());
  // This test forges damage inside individual frame files, so it pins the
  // legacy per-frame store; segment-level damage is covered by the journal
  // suite (test_journal.cpp) and the fuzz/crash-matrix lanes.
  opts.journal_mode = JournalMode::kPerFrame;

  auto plain = opts;
  plain.checkpoint_dir.clear();
  LongitudinalStudy reference(plain);
  const auto ref_csv = chart_csv(reference);

  {
    LongitudinalStudy first(opts);
    (void)first.monitor();
    EXPECT_GT(first.recovery().tasks_recomputed, 0u);
  }
  auto files = frame_files(ckpt);
  ASSERT_GE(files.size(), 3u);
  {  // bit-rot one frame (outer checksum catches it on replay)
    auto bytes = slurp(files[0].string());
    bytes[bytes.size() - 9] ^= 0x40;
    std::ofstream(files[0], std::ios::binary) << bytes;
  }
  {  // valid wrapper, garbage payload: survives replay, fails the monitor
     // decode inside run(), and must take the invalidate() path
    const auto digest = tls::study::options_digest(opts);
    const auto name = files[1].filename().string();
    // p_%06u_%04u.frame
    const auto month_index =
        static_cast<std::uint32_t>(std::stoul(name.substr(2, 6)));
    const auto slot = static_cast<std::uint32_t>(std::stoul(name.substr(9, 4)));
    const auto evil = tls::study::encode_frame(
        digest, {FrameKind::kPassiveShard, month_index, slot},
        std::vector<std::uint8_t>(40, 0xee));
    std::ofstream(files[1], std::ios::binary)
        .write(reinterpret_cast<const char*>(evil.data()),
               static_cast<std::streamsize>(evil.size()));
  }
  {  // and one torn temp file
    std::ofstream(ckpt / "frames" / (files[2].filename().string() + ".tmp"))
        << "torn";
  }

  auto ropts = opts;
  ropts.resume = true;
  LongitudinalStudy resumed(ropts);
  EXPECT_EQ(chart_csv(resumed), ref_csv);  // damage cost recompute, not bytes
  const auto report = resumed.recovery();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_corrupt, 2u);  // bit-rot + invalidated payload
  EXPECT_EQ(report.frames_torn, 1u);
  EXPECT_EQ(report.tasks_recomputed, 2u);
  EXPECT_GT(report.tasks_skipped, 0u);
  EXPECT_EQ(report.quarantined.size(), 3u);
  for (const auto& q : report.quarantined) EXPECT_TRUE(fs::exists(q)) << q;
  fs::remove_all(ckpt);
}

TEST(CheckpointStudy, OptionChangeOrphansJournalGracefully) {
  const auto ckpt = fresh_dir("study_orphan");
  auto opts = journal_options(ckpt.string());
  std::size_t n_frames = 0;
  {
    LongitudinalStudy first(opts);
    (void)first.monitor();
    // One frame journaled per computed task — counted via the report since
    // grouped mode keeps frames inside segments, not one file each.
    n_frames = first.recovery().tasks_recomputed;
  }
  ASSERT_GT(n_frames, 0u);

  // Different seed => different bytes => every old frame must be rejected.
  auto other = opts;
  other.seed = opts.seed + 1;
  other.resume = true;
  auto other_plain = other;
  other_plain.checkpoint_dir.clear();
  LongitudinalStudy reference(other_plain);
  LongitudinalStudy resumed(other);
  EXPECT_EQ(chart_csv(resumed), chart_csv(reference));
  const auto report = resumed.recovery();
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.frames_mismatched, n_frames);
  EXPECT_EQ(report.tasks_skipped, 0u);
  fs::remove_all(ckpt);
}

TEST(CheckpointStudy, FrameFaultSoakNeverChangesBytes) {
  // Hostile journal: a third of appended frames are torn, bit-flipped, or
  // duplicated before reaching disk. Neither the journaled run nor a
  // resume over the damaged journal may change one exported byte.
  const auto ckpt = fresh_dir("study_soak");
  auto opts = journal_options(ckpt.string());
  auto plain = opts;
  plain.checkpoint_dir.clear();
  LongitudinalStudy reference(plain);
  const auto ref_csv = chart_csv(reference);

  opts.checkpoint_faults = tls::faults::FaultConfig::frames_only(0.9);
  {
    LongitudinalStudy soaked(opts);
    EXPECT_EQ(chart_csv(soaked), ref_csv);
  }
  auto ropts = opts;
  ropts.resume = true;
  ropts.checkpoint_faults = {};  // repair pass journals cleanly
  LongitudinalStudy resumed(ropts);
  EXPECT_EQ(chart_csv(resumed), ref_csv);
  const auto report = resumed.recovery();
  EXPECT_TRUE(report.resumed);
  // At a 90% combined frame-fault rate, the damage must actually land.
  EXPECT_GT(report.frames_corrupt + report.frames_torn +
                report.frames_duplicate + report.frames_mismatched,
            0u);
  const auto n_tasks = static_cast<std::size_t>(opts.window.size()) *
                       opts.shards_per_month;
  EXPECT_EQ(report.tasks_skipped + report.tasks_recomputed, n_tasks);
  fs::remove_all(ckpt);
}

TEST(CheckpointStudy, WatchdogRerunsStuckShardsWithoutChangingBytes) {
  auto opts = journal_options("");  // watchdog is independent of journaling
  LongitudinalStudy reference(opts);
  const auto ref_csv = chart_csv(reference);
  EXPECT_EQ(reference.recovery().stuck_reruns, 0u);

  // A 1 µs budget trips the per-batch deadline check in (essentially)
  // every shard; each is discarded and re-run once without a deadline, and
  // the rerun reproduces the identical stream.
  auto strict = opts;
  strict.task_deadline_us = 1;
  strict.threads = 8;
  LongitudinalStudy watched(strict);
  EXPECT_EQ(chart_csv(watched), ref_csv);
  EXPECT_GT(watched.recovery().stuck_reruns, 0u);

  // A generous budget never trips.
  auto lax = opts;
  lax.task_deadline_us = 60'000'000;
  LongitudinalStudy relaxed(lax);
  EXPECT_EQ(chart_csv(relaxed), ref_csv);
  EXPECT_EQ(relaxed.recovery().stuck_reruns, 0u);
}

// ---- the crash matrix ---------------------------------------------------

TEST(CheckpointCrashMatrix, KillResumeByteIdenticalAcrossThreadsAndFaults) {
  for (const int fault_milli : {0, 100}) {
    SCOPED_TRACE("fault_milli=" + std::to_string(fault_milli));

    // Uninterrupted reference export (no checkpointing at all).
    const auto ref_dir =
        fresh_dir("crash_ref_" + std::to_string(fault_milli));
    LongitudinalStudy reference(matrix_options(fault_milli));
    const auto ref_files = reference.export_figures(ref_dir.string());
    ASSERT_EQ(ref_files.size(), 11u);

    // One complete journaled child establishes the total frame count so
    // the kill offsets below provably land inside the journal — early in
    // the passive phase, mid-run, and inside the scan phase. It runs in
    // per-frame mode so the count is observable as files; the task plan
    // (and hence the frame count) is identical in grouped mode.
    const auto probe_ckpt =
        fresh_dir("crash_probe_" + std::to_string(fault_milli));
    const auto probe_out =
        fresh_dir("crash_probe_out_" + std::to_string(fault_milli));
    {
      const int status = spawn_child(probe_ckpt.string(), probe_out.string(),
                                     0, fault_milli, 0, /*group_frames=*/0);
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    const std::size_t total_frames = frame_files(probe_ckpt).size();
    ASSERT_GT(total_frames, 4u);
    for (const auto& f : ref_files) {
      const auto name = fs::path(f).filename();
      EXPECT_EQ(slurp((probe_out / name).string()), slurp(f)) << name;
    }
    fs::remove_all(probe_ckpt);
    fs::remove_all(probe_out);

    // Journal-mode lanes: the legacy per-frame store (0), the group-commit
    // journal at its default flush threshold (64), and degenerate
    // one-frame groups (1) — the latter as a cheap smoke lane; CI runs the
    // full matrix at both group sizes.
    const std::size_t offsets[] = {1, total_frames / 2, total_frames - 2};
    for (const long group_frames : {0L, 64L, 1L}) {
      SCOPED_TRACE("group_frames=" + std::to_string(group_frames));
      for (const unsigned threads : {0u, 8u}) {
        for (const std::size_t kill_after : offsets) {
          // Keep the matrix affordable: the serial lane runs the mid
          // offset only; the threaded lane runs all three; the one-frame
          // group lane runs only threaded-mid.
          if (threads == 0 && kill_after != total_frames / 2) continue;
          if (group_frames == 1L &&
              (threads == 0 || kill_after != total_frames / 2)) {
            continue;
          }
          SCOPED_TRACE("threads=" + std::to_string(threads) +
                       " kill_after=" + std::to_string(kill_after));
          const auto tag = std::to_string(fault_milli) + "_" +
                           std::to_string(threads) + "_" +
                           std::to_string(kill_after) + "_g" +
                           std::to_string(group_frames);
          const auto ckpt = fresh_dir("crash_ckpt_" + tag);
          const auto out = fresh_dir("crash_out_" + tag);

          // Phase 1: the child is SIGKILLed mid-journal — no atexit, no
          // stack unwinding, exactly like a power cut. In grouped mode
          // the seam fires in the writer right after a group fsync, so
          // at least kill_after frames are durable here too — inside
          // segments, where only replay can count them.
          const int killed = spawn_child(ckpt.string(), out.string(),
                                         threads, fault_milli, kill_after,
                                         group_frames);
          ASSERT_TRUE(WIFSIGNALED(killed)) << "status " << killed;
          EXPECT_EQ(WTERMSIG(killed), SIGKILL);
          if (group_frames > 0) {
            EXPECT_TRUE(fs::exists(ckpt / "segments"));
          } else {
            EXPECT_GE(frame_files(ckpt).size(), kill_after);
          }

          // Phase 2: resume to completion in a fresh process.
          const int resumed = spawn_child(ckpt.string(), out.string(),
                                          threads, fault_milli, 0,
                                          group_frames);
          ASSERT_TRUE(WIFEXITED(resumed) && WEXITSTATUS(resumed) == 0)
              << "status " << resumed;

          // Byte-compare all 11 CSVs against the uninterrupted run.
          for (const auto& f : ref_files) {
            const auto name = fs::path(f).filename();
            EXPECT_EQ(slurp((out / name).string()), slurp(f)) << name;
          }
          fs::remove_all(ckpt);
          fs::remove_all(out);
        }
      }
    }
    fs::remove_all(ref_dir);
  }
}

// ---- the signal-drain lane ----------------------------------------------

TEST(CheckpointSignalDrain, SigtermFlushesLingeringGroupAndResumeCompletes) {
  // Uninterrupted reference export.
  const auto ref_dir = fresh_dir("drain_ref");
  LongitudinalStudy reference(matrix_options(0));
  const auto ref_files = reference.export_figures(ref_dir.string());
  ASSERT_EQ(ref_files.size(), 11u);

  const auto ckpt = fresh_dir("drain_ckpt");
  const auto out = fresh_dir("drain_out");
  constexpr std::size_t kTermAfter = 3;

  // Phase 1: the child gets SIGTERM after 3 appends. Its group thresholds
  // are unreachable, so nothing is durable at signal time — a graceful
  // drain must exit 0 having flushed the lingering group; exit 1 means the
  // seam never fired, a termsig means the drain path crashed.
  const int status = spawn_drain_child(ckpt.string(), out.string(),
                                       kTermAfter);
  ASSERT_TRUE(WIFEXITED(status)) << "status " << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // The watcher _Exit()s mid-run: no figure CSV may have been written.
  EXPECT_TRUE(fs::is_empty(out));

  // The drained frames are really on disk: a fresh replay over the same
  // manifest sees at least kTermAfter verified frames, none of which
  // could have committed organically.
  {
    const auto manifest = tls::study::make_manifest(
        matrix_options(0),
        tls::servers::ServerPopulation::standard().segments().size());
    RunJournal probe({ckpt.string(), /*resume=*/true, manifest});
    const auto report = probe.snapshot_report();
    EXPECT_TRUE(report.resumed);
    EXPECT_GE(report.frames_replayed, kTermAfter);
    EXPECT_EQ(report.frames_torn, 0u);
    EXPECT_EQ(report.frames_corrupt, 0u);
  }

  // Phase 2: resume to completion in a fresh process; bytes must match
  // the uninterrupted reference exactly.
  const int resumed = spawn_child(ckpt.string(), out.string(), /*threads=*/4,
                                  /*fault_milli=*/0, /*kill_after=*/0,
                                  /*group_frames=*/64);
  ASSERT_TRUE(WIFEXITED(resumed) && WEXITSTATUS(resumed) == 0)
      << "status " << resumed;
  for (const auto& f : ref_files) {
    const auto name = fs::path(f).filename();
    EXPECT_EQ(slurp((out / name).string()), slurp(f)) << name;
  }
  fs::remove_all(ckpt);
  fs::remove_all(out);
  fs::remove_all(ref_dir);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--checkpoint-child") {
    return run_checkpoint_child(argc, argv);
  }
  if (argc > 1 && std::string(argv[1]) == "--signal-drain-child") {
    return run_signal_drain_child(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
