#include <gtest/gtest.h>

#include <set>
#include <string>

#include "tlscore/cipher_suites.hpp"

namespace tls::core {
namespace {

TEST(Registry, SortedAndUnique) {
  const auto suites = all_cipher_suites();
  ASSERT_GT(suites.size(), 150u);
  for (std::size_t i = 1; i < suites.size(); ++i) {
    EXPECT_LT(suites[i - 1].id, suites[i].id);
  }
}

TEST(Registry, IdLookupConsistent) {
  for (const auto& s : all_cipher_suites()) {
    const auto* found = find_cipher_suite(s.id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, s.name);
  }
  EXPECT_EQ(find_cipher_suite(std::uint16_t{0x4a4a}), nullptr);  // GREASE
  EXPECT_EQ(find_cipher_suite(std::uint16_t{0xeeee}), nullptr);
}

TEST(Registry, NameLookupConsistent) {
  for (const auto& s : all_cipher_suites()) {
    const auto* found = find_cipher_suite(s.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, s.id);
  }
  EXPECT_EQ(find_cipher_suite("TLS_NO_SUCH_SUITE"), nullptr);
}

// Cross-validate structural attributes against the IANA naming convention —
// every rule the name encodes must agree with the attribute data.
class SuiteNameConsistency : public ::testing::TestWithParam<CipherSuiteInfo> {};

TEST_P(SuiteNameConsistency, NameMatchesAttributes) {
  const auto& s = GetParam();
  const std::string name(s.name);
  const auto has = [&](const char* token) {
    return name.find(token) != std::string::npos;
  };
  if (s.scsv) {
    EXPECT_TRUE(has("SCSV"));
    return;
  }
  EXPECT_EQ(has("_GCM_"), s.mode == CipherMode::kGcm) << name;
  EXPECT_EQ(has("CHACHA20"), s.cipher == BulkCipher::kChaCha20) << name;
  EXPECT_EQ(has("_CBC"), s.mode == CipherMode::kCbc) << name;
  EXPECT_EQ(has("_RC4_"), is_rc4(s)) << name;
  EXPECT_EQ(has("3DES"), is_3des(s)) << name;
  EXPECT_EQ(has("EXPORT"), is_export(s)) << name;
  EXPECT_EQ(has("_anon_"), is_anonymous(s)) << name;
  EXPECT_EQ(has("_NULL_") && !has("WITH_NULL_NULL"),
            is_null_cipher(s) && s.id != 0x0000)
      << name;
  if (has("_DHE_") || has("_ECDHE_")) {
    EXPECT_TRUE(is_forward_secret(s)) << name;
  }
  if (has("TLS_RSA_WITH")) {
    EXPECT_FALSE(is_forward_secret(s)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, SuiteNameConsistency,
    ::testing::ValuesIn(all_cipher_suites().begin(),
                        all_cipher_suites().end()),
    [](const ::testing::TestParamInfo<CipherSuiteInfo>& info) {
      std::string n(info.param.name);
      for (auto& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n;
    });

TEST(Classification, AeadImpliesAeadMac) {
  for (const auto& s : all_cipher_suites()) {
    if (is_aead(s)) EXPECT_EQ(s.mac, MacAlgorithm::kAead) << s.name;
    if (s.mac == MacAlgorithm::kAead) EXPECT_TRUE(is_aead(s)) << s.name;
  }
}

TEST(Classification, ClassesArePartition) {
  // Each real suite lands in exactly one CipherClass bucket.
  for (const auto& s : all_cipher_suites()) {
    if (s.scsv) continue;
    const int buckets = static_cast<int>(is_aead(s)) +
                        static_cast<int>(is_cbc(s)) +
                        static_cast<int>(is_rc4(s)) +
                        static_cast<int>(is_null_cipher(s));
    EXPECT_LE(buckets, 1) << s.name;
    const CipherClass c = cipher_class(s);
    if (buckets == 0) {
      EXPECT_EQ(c, CipherClass::kOther) << s.name;  // GOST CNT, IDEA stream?
    }
  }
}

TEST(Classification, KnownSuites) {
  using namespace suites;
  EXPECT_EQ(cipher_class(TLS_RSA_WITH_RC4_128_SHA), CipherClass::kRc4);
  EXPECT_EQ(cipher_class(TLS_RSA_WITH_AES_128_CBC_SHA), CipherClass::kCbc);
  EXPECT_EQ(cipher_class(TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256),
            CipherClass::kAead);
  EXPECT_EQ(cipher_class(TLS_RSA_WITH_NULL_SHA), CipherClass::kNullCipher);
  EXPECT_EQ(cipher_class(TLS_FALLBACK_SCSV), CipherClass::kOther);
  EXPECT_EQ(cipher_class(std::uint16_t{0xdada}), CipherClass::kOther);
}

TEST(Classification, KexClasses) {
  using namespace suites;
  EXPECT_EQ(kex_class(TLS_RSA_WITH_AES_128_GCM_SHA256), KexClass::kRsa);
  EXPECT_EQ(kex_class(TLS_DHE_RSA_WITH_AES_128_GCM_SHA256), KexClass::kDhe);
  EXPECT_EQ(kex_class(TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256),
            KexClass::kEcdhe);
  EXPECT_EQ(kex_class(std::uint16_t{0xc004}), KexClass::kEcdhStatic);
  EXPECT_EQ(kex_class(TLS_DH_anon_WITH_RC4_128_MD5), KexClass::kAnon);
  EXPECT_EQ(kex_class(TLS_AES_128_GCM_SHA256), KexClass::kTls13);
  EXPECT_EQ(kex_class(TLS_RSA_EXPORT_WITH_RC4_40_MD5), KexClass::kRsa);
}

TEST(Classification, AeadKinds) {
  using namespace suites;
  EXPECT_EQ(aead_kind(TLS_RSA_WITH_AES_128_GCM_SHA256), AeadKind::kAes128Gcm);
  EXPECT_EQ(aead_kind(TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384),
            AeadKind::kAes256Gcm);
  EXPECT_EQ(aead_kind(TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256),
            AeadKind::kChaCha20Poly1305);
  EXPECT_EQ(aead_kind(std::uint16_t{0xc09c}), AeadKind::kAesCcm);
  EXPECT_EQ(aead_kind(TLS_RSA_WITH_AES_128_CBC_SHA), AeadKind::kNotAead);
}

TEST(Classification, ExportIncludes40BitCiphers) {
  // Export = export kex OR <= 40-bit strength.
  EXPECT_TRUE(is_export(*find_cipher_suite(std::uint16_t{0x0003})));
  EXPECT_TRUE(is_export(*find_cipher_suite(std::uint16_t{0x0017})));
  EXPECT_FALSE(is_export(*find_cipher_suite(std::uint16_t{0x0005})));
  EXPECT_FALSE(is_export(*find_cipher_suite(std::uint16_t{0x0009})));  // DES
}

TEST(Classification, ForwardSecrecy) {
  using namespace suites;
  EXPECT_TRUE(
      is_forward_secret(*find_cipher_suite(TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA)));
  EXPECT_TRUE(
      is_forward_secret(*find_cipher_suite(TLS_DHE_RSA_WITH_AES_128_CBC_SHA)));
  EXPECT_TRUE(is_forward_secret(*find_cipher_suite(TLS_AES_128_GCM_SHA256)));
  EXPECT_FALSE(
      is_forward_secret(*find_cipher_suite(TLS_RSA_WITH_AES_128_CBC_SHA)));
  EXPECT_FALSE(is_forward_secret(*find_cipher_suite(std::uint16_t{0xc004})));
}

TEST(Classification, NullWithNullNull) {
  EXPECT_TRUE(is_null_with_null_null(*find_cipher_suite(std::uint16_t{0})));
  EXPECT_FALSE(
      is_null_with_null_null(*find_cipher_suite(std::uint16_t{0x0002})));
  EXPECT_TRUE(is_null_cipher(*find_cipher_suite(std::uint16_t{0x0002})));
}

TEST(Classification, Names) {
  EXPECT_EQ(cipher_class_name(CipherClass::kAead), "AEAD");
  EXPECT_EQ(kex_class_name(KexClass::kEcdhe), "ECDHE");
}

}  // namespace
}  // namespace tls::core
