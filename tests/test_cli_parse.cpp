// Regression tests for ISSUE 7's CLI-parsing bugfix: study_cli used raw
// atol/atoi, so `--journal-group-frames garbage` silently became 0 and
// negatives flowed into the group-commit config unchecked. parse_long is
// the checked replacement; the GroupCommitWriter clamp is the programmatic
// backstop for callers that bypass the CLI.
#include <gtest/gtest.h>

#include <chrono>
#include <climits>
#include <cstdint>
#include <thread>
#include <vector>

#include "../examples/cli_parse.hpp"
#include "core/checkpoint.hpp"
#include "core/journal.hpp"

namespace {

using tls::cli::parse_long;

TEST(ParseLong, AcceptsWholeDecimalIntegersInRange) {
  long v = 99;
  EXPECT_TRUE(parse_long("0", 0, LONG_MAX, &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parse_long("64", 1, LONG_MAX, &v));
  EXPECT_EQ(v, 64);
  EXPECT_TRUE(parse_long("-5", LONG_MIN, 0, &v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(parse_long("10", 1, 10, &v));
  EXPECT_EQ(v, 10);
}

TEST(ParseLong, RejectsGarbageWithoutTouchingOut) {
  long v = 42;
  EXPECT_FALSE(parse_long("garbage", 0, LONG_MAX, &v));
  EXPECT_FALSE(parse_long("", 0, LONG_MAX, &v));
  EXPECT_FALSE(parse_long(nullptr, 0, LONG_MAX, &v));
  EXPECT_FALSE(parse_long("12x", 0, LONG_MAX, &v));   // trailing junk
  EXPECT_FALSE(parse_long("1 2", 0, LONG_MAX, &v));   // embedded space
  EXPECT_FALSE(parse_long("0x10", 0, LONG_MAX, &v));  // decimal only
  EXPECT_EQ(v, 42);
}

TEST(ParseLong, RejectsOutOfRangeAndOverflow) {
  long v = 42;
  // The study_cli contracts: --journal-group-frames wants [1, LONG_MAX],
  // --journal-group-ms wants [0, LONG_MAX], figure wants [1, 10].
  EXPECT_FALSE(parse_long("0", 1, LONG_MAX, &v));
  EXPECT_FALSE(parse_long("-1", 1, LONG_MAX, &v));
  EXPECT_FALSE(parse_long("-1", 0, LONG_MAX, &v));
  EXPECT_FALSE(parse_long("11", 1, 10, &v));
  EXPECT_FALSE(parse_long("99999999999999999999999", 0, LONG_MAX, &v));
  EXPECT_FALSE(parse_long("-99999999999999999999999", LONG_MIN, 0, &v));
  EXPECT_EQ(v, 42);
}

// Programmatic callers get the same guarantee as the CLI: a Config with
// group_frames == 0 (which would otherwise make the writer take zero-frame
// groups forever, never draining the queue) is clamped to 1 at
// construction, so a lone enqueued frame still commits via the count
// threshold.
TEST(GroupWriterConfig, ZeroGroupFramesIsClampedToOne) {
  tls::study::MemoryJournalBackend backend;
  tls::study::GroupCommitWriter::Config wc;
  wc.group_frames = 0;
  wc.group_ms = 60'000;  // linger may not mask the clamp under test
  wc.options_digest = 7;
  tls::study::GroupCommitWriter writer(&backend, wc, nullptr);

  std::vector<std::uint8_t> payload(16, 0xabu);
  writer.enqueue("lone", tls::study::encode_frame(
                             7, {tls::study::FrameKind::kPassiveShard, 1, 0},
                             payload));
  bool committed = false;
  for (int i = 0; i < 2000 && !committed; ++i) {
    committed = writer.stats().frames == 1;
    if (!committed) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(committed);
  writer.stop();
  EXPECT_EQ(backend.sync_calls(), 1u);
}

}  // namespace
