#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "clients/catalog.hpp"
#include "clients/suite_pools.hpp"
#include "fingerprint/fingerprint.hpp"
#include "tlscore/grease.hpp"

namespace tls::clients {
namespace {

using tls::core::Date;

TEST(SuitePools, SizesMatchPaperMaxima) {
  EXPECT_EQ(cbc_pool().size(), 29u);   // Table 3's largest count
  EXPECT_EQ(rc4_pool().size(), 7u);    // Table 4 (Safari's 7)
  EXPECT_EQ(tdes_pool().size(), 8u);   // Table 5's largest count
  EXPECT_GE(aead_pool().size(), 10u);
}

TEST(SuitePools, ComposeDeduplicates) {
  const auto v = compose({prefix(cbc_pool(), 5), prefix(cbc_pool(), 9)});
  EXPECT_EQ(v.size(), 9u);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(),
                                  cbc_pool().begin(), cbc_pool().begin() + 9));
}

TEST(SuitePools, PrefixOutOfRangeThrows) {
  EXPECT_THROW(prefix(rc4_pool(), 99), std::out_of_range);
}

TEST(Profile, ConfigAtPicksLatestReleased) {
  const auto catalog = Catalog::core_only();
  const auto* chrome = catalog.find("Chrome");
  ASSERT_NE(chrome, nullptr);
  EXPECT_EQ(chrome->config_at(Date(2013, 9, 1))->version_label, "29");
  EXPECT_EQ(chrome->config_at(Date(2013, 11, 12))->version_label, "31");
  EXPECT_EQ(chrome->config_at(Date(2018, 4, 1))->version_label, "65");
  // Before the first release there is no config.
  ClientProfile future{"x", tls::fp::SoftwareClass::kBrowser, {}};
  ClientConfig cfg;
  cfg.release = Date(2020, 1, 1);
  future.versions.push_back(cfg);
  EXPECT_EQ(future.config_at(Date(2015, 1, 1)), nullptr);
}

TEST(Profile, VersionsAreChronological) {
  const auto catalog = Catalog::core_only();
  for (const auto& p : catalog.profiles()) {
    for (std::size_t i = 1; i < p.versions.size(); ++i) {
      EXPECT_LE(p.versions[i - 1].release, p.versions[i].release)
          << p.name << " " << p.versions[i].version_label;
    }
  }
}

TEST(Profile, AllConfigSuitesAreRegistered) {
  const auto catalog = Catalog::core_only();
  for (const auto& p : catalog.profiles()) {
    for (const auto& cfg : p.versions) {
      for (const auto id : cfg.cipher_suites) {
        EXPECT_NE(tls::core::find_cipher_suite(id), nullptr)
            << p.name << " " << cfg.version_label << " suite " << id;
      }
      EXPECT_FALSE(cfg.cipher_suites.empty()) << p.name;
    }
  }
}

TEST(MakeHello, SniIncludedAndSkipped) {
  const auto catalog = Catalog::core_only();
  const auto* cfg = catalog.find("Chrome")->config_at(Date(2016, 1, 1));
  tls::core::Rng rng(3);
  const auto with = make_client_hello(*cfg, rng, "host.test");
  EXPECT_EQ(*with.server_name(), "host.test");
  const auto without = make_client_hello(*cfg, rng, "");
  EXPECT_FALSE(without.server_name().has_value());
}

TEST(MakeHello, GreaseInjection) {
  const auto catalog = Catalog::core_only();
  // Chrome 55+ GREASEs.
  const auto* cfg = catalog.find("Chrome")->config_at(Date(2017, 2, 1));
  ASSERT_TRUE(cfg->grease);
  tls::core::Rng rng(5);
  const auto hello = make_client_hello(*cfg, rng, "g.test");
  EXPECT_TRUE(tls::core::is_grease(hello.cipher_suites.front()));
  EXPECT_TRUE(tls::core::is_grease(hello.extensions.front().type));
  EXPECT_TRUE(tls::core::is_grease(hello.extensions.back().type));
  const auto groups = hello.supported_groups();
  ASSERT_TRUE(groups.has_value());
  EXPECT_TRUE(tls::core::is_grease(groups->front()));
}

TEST(MakeHello, GreaseDoesNotChangeFingerprint) {
  const auto catalog = Catalog::core_only();
  const auto* cfg = catalog.find("Chrome")->config_at(Date(2017, 2, 1));
  tls::core::Rng r1(1), r2(999);
  const auto a = tls::fp::extract_fingerprint(make_client_hello(*cfg, r1, "x"));
  const auto b = tls::fp::extract_fingerprint(make_client_hello(*cfg, r2, "x"));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(MakeHello, ShufflerPermutesButPreservesSet) {
  const auto catalog = Catalog::core_only();
  const auto* bot = catalog.find("ShuffleBot");
  ASSERT_NE(bot, nullptr);
  const auto& cfg = bot->versions.front();
  ASSERT_TRUE(cfg.randomizes_cipher_order);
  tls::core::Rng rng(8);
  const auto a = make_client_hello(cfg, rng, "s.test");
  const auto b = make_client_hello(cfg, rng, "s.test");
  EXPECT_TRUE(std::is_permutation(a.cipher_suites.begin(),
                                  a.cipher_suites.end(),
                                  b.cipher_suites.begin()));
  EXPECT_NE(a.cipher_suites, b.cipher_suites);  // overwhelmingly likely
}

TEST(MakeHello, Tls13ClientCarriesMandatoryExtensions) {
  const auto catalog = Catalog::core_only();
  const auto* cfg = catalog.find("Chrome")->config_at(Date(2018, 4, 1));
  ASSERT_FALSE(cfg->supported_versions.empty());
  tls::core::Rng rng(4);
  const auto hello = make_client_hello(*cfg, rng, "t.test");
  EXPECT_TRUE(hello.has_extension(tls::core::ExtensionType::kSupportedVersions));
  EXPECT_TRUE(hello.has_extension(tls::core::ExtensionType::kKeyShare));
  EXPECT_EQ(hello.session_id.size(), 32u);  // middlebox compatibility
  EXPECT_EQ(hello.max_offered_version(), 0x7e02);
}

// ---- paper table invariants, parameterized ----

struct TableRow {
  const char* browser;
  const char* version;
  int cbc;
  int rc4;
  int tdes;
};

class BrowserTableCounts : public ::testing::TestWithParam<TableRow> {};

TEST_P(BrowserTableCounts, MatchesPaper) {
  const auto& row = GetParam();
  const auto catalog = Catalog::core_only();
  const auto* p = catalog.find(row.browser);
  ASSERT_NE(p, nullptr);
  const ClientConfig* cfg = nullptr;
  for (const auto& c : p->versions) {
    if (c.version_label == row.version) cfg = &c;
  }
  ASSERT_NE(cfg, nullptr) << row.browser << " " << row.version;
  if (row.cbc >= 0) EXPECT_EQ(static_cast<int>(cfg->count_cbc()), row.cbc);
  if (row.rc4 >= 0) EXPECT_EQ(static_cast<int>(cfg->count_rc4()), row.rc4);
  if (row.tdes >= 0) EXPECT_EQ(static_cast<int>(cfg->count_3des()), row.tdes);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTables345, BrowserTableCounts,
    ::testing::Values(TableRow{"Chrome", "29", 16, 4, 1},
                      TableRow{"Chrome", "31", 10, 4, 1},
                      TableRow{"Chrome", "41", 9, 4, -1},
                      TableRow{"Chrome", "43", 9, 0, -1},
                      TableRow{"Chrome", "49", 7, 0, -1},
                      TableRow{"Chrome", "56", 5, 0, -1},
                      TableRow{"Firefox", "27", 17, 4, 3},
                      TableRow{"Firefox", "33", 10, 4, 1},
                      TableRow{"Firefox", "37", 9, 4, -1},
                      TableRow{"Firefox", "44", 9, 0, -1},
                      TableRow{"Opera", "16", 16, 4, 1},
                      TableRow{"Opera", "18", 10, 4, -1},
                      TableRow{"Opera", "30", 7, 0, -1},
                      TableRow{"Opera", "43", 5, 0, -1},
                      TableRow{"Safari", "6", -1, 6, -1},
                      TableRow{"Safari", "9", 15, 4, 3},
                      TableRow{"Safari", "10", -1, 0, -1},
                      TableRow{"Safari", "10.1", 12, 0, -1},
                      TableRow{"IE/Edge", "13", -1, 0, -1}),
    [](const ::testing::TestParamInfo<TableRow>& info) {
      std::string n = std::string(info.param.browser) + "_" +
                      info.param.version;
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Catalog, StandardMatchesTable2Counts) {
  const auto& catalog = standard_catalog();
  tls::fp::FingerprintDatabase db;
  tls::core::Rng rng(7);
  for (const auto& p : catalog.profiles()) {
    for (const auto& cfg : p.versions) {
      if (cfg.randomizes_cipher_order) continue;
      const auto hello = make_client_hello(cfg, rng, "db.test");
      db.add(tls::fp::extract_fingerprint(hello),
             tls::fp::SoftwareLabel{p.name, p.cls, cfg.version_label,
                                    cfg.version_label});
    }
  }
  const auto counts = db.count_by_class();
  using SC = tls::fp::SoftwareClass;
  EXPECT_EQ(counts.at(SC::kLibrary), 700u);
  EXPECT_EQ(counts.at(SC::kBrowser), 193u);
  EXPECT_EQ(counts.at(SC::kOsTool), 13u);
  EXPECT_EQ(counts.at(SC::kMobileApp), 489u);
  EXPECT_EQ(counts.at(SC::kDevTool), 12u);
  EXPECT_EQ(counts.at(SC::kAntivirus), 44u);
  EXPECT_EQ(counts.at(SC::kCloudStorage), 29u);
  EXPECT_EQ(counts.at(SC::kEmail), 33u);
  EXPECT_EQ(counts.at(SC::kMalware), 49u);
}

TEST(Catalog, HeartbleedPatchDoesNotChangeFingerprint) {
  // OpenSSL 1.0.1 vs 1.0.1g: identical ClientHello bytes (§5.4 — passive
  // observation cannot tell patched from vulnerable).
  const auto catalog = Catalog::core_only();
  const auto* openssl = catalog.find("OpenSSL");
  const ClientConfig* v101 = nullptr;
  const ClientConfig* v101g = nullptr;
  for (const auto& c : openssl->versions) {
    if (c.version_label == "1.0.1") v101 = &c;
    if (c.version_label == "1.0.1g") v101g = &c;
  }
  ASSERT_NE(v101, nullptr);
  ASSERT_NE(v101g, nullptr);
  tls::core::Rng rng(2);
  EXPECT_EQ(tls::fp::extract_fingerprint(make_client_hello(*v101, rng, "x")).hash(),
            tls::fp::extract_fingerprint(make_client_hello(*v101g, rng, "x")).hash());
}

TEST(Catalog, FindIsExact) {
  const auto catalog = Catalog::core_only();
  EXPECT_NE(catalog.find("Chrome"), nullptr);
  EXPECT_EQ(catalog.find("chrome"), nullptr);
  EXPECT_EQ(catalog.find("NoSuch"), nullptr);
}

}  // namespace
}  // namespace tls::clients
