// Cross-product property test: every catalog client version against every
// server segment, at several points in time. Whatever happens, the
// invariants of a correct negotiation engine must hold — this is the net
// that catches registry/catalog/negotiation drift as the models evolve.
#include <gtest/gtest.h>

#include <algorithm>

#include "clients/catalog.hpp"
#include "handshake/negotiate.hpp"
#include "servers/population.hpp"
#include "tlscore/grease.hpp"
#include "tlscore/named_groups.hpp"

namespace {

using tls::core::find_cipher_suite;

bool is_tls13_wire(std::uint16_t v) {
  return v == 0x0304 || (v & 0xff00) == 0x7f00 || (v & 0xff00) == 0x7e00;
}

TEST(CompatMatrix, AllClientServerPairsSatisfyInvariants) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  tls::core::Rng rng(2024);

  std::size_t pairs = 0, successes = 0;
  for (const auto& profile : catalog.profiles()) {
    for (const auto& cfg : profile.versions) {
      const auto hello = tls::clients::make_client_hello(cfg, rng, "m.test");
      for (const auto& seg : servers.segments()) {
        tls::handshake::NegotiateOptions opts;
        opts.accept_unoffered_suite = profile.name == "Interwise";
        const auto r =
            tls::handshake::negotiate(hello, seg.config, rng, opts);
        ++pairs;
        if (!r.success) {
          // Failures must carry a reason and (except version failures)
          // usually a ServerHello for the monitor to inspect.
          EXPECT_NE(r.failure, tls::handshake::FailureReason::kNone)
              << profile.name << " vs " << seg.name;
          continue;
        }
        ++successes;
        ASSERT_TRUE(r.server_hello.has_value())
            << profile.name << " vs " << seg.name;
        const auto suite = r.negotiated_cipher;

        // 1. The chosen suite is real and never GREASE/SCSV.
        const auto* info = find_cipher_suite(suite);
        ASSERT_NE(info, nullptr) << profile.name << " vs " << seg.name;
        EXPECT_FALSE(info->scsv);
        EXPECT_FALSE(tls::core::is_grease(suite));

        // 2. Unless the server is a quirk machine, the suite was offered by
        //    the client AND is in the server's preference list.
        if (!r.spec_violation) {
          EXPECT_NE(std::find(hello.cipher_suites.begin(),
                              hello.cipher_suites.end(), suite),
                    hello.cipher_suites.end())
              << profile.name << " vs " << seg.name;
          EXPECT_TRUE(seg.config.supports_suite(suite))
              << profile.name << " vs " << seg.name;
        }

        // 3. Version is within the server's range (or a TLS 1.3 variant the
        //    server lists), and never above what the client offered.
        const auto v = r.negotiated_version;
        if (is_tls13_wire(v)) {
          EXPECT_NE(std::find(seg.config.tls13_versions.begin(),
                              seg.config.tls13_versions.end(), v),
                    seg.config.tls13_versions.end())
              << profile.name << " vs " << seg.name;
        } else {
          EXPECT_GE(v, seg.config.min_version);
          EXPECT_LE(v, seg.config.max_version);
          EXPECT_LE(v, hello.legacy_version);
        }

        // 4. The suite is usable at the negotiated version.
        EXPECT_TRUE(tls::handshake::suite_allowed_at_version(*info, v))
            << info->name << " at " << std::hex << v;

        // 5. EC key exchanges always carry a mutually-supported group.
        if (r.negotiated_group != 0) {
          EXPECT_NE(tls::core::find_named_group(r.negotiated_group), nullptr);
          EXPECT_NE(std::find(seg.config.groups.begin(),
                              seg.config.groups.end(), r.negotiated_group),
                    seg.config.groups.end())
              << profile.name << " vs " << seg.name;
        }

        // 6. The ServerHello re-parses from its own bytes.
        const auto reparsed = tls::wire::ServerHello::parse_record(
            r.server_hello->serialize_record());
        EXPECT_EQ(reparsed.cipher_suite, suite);
      }
    }
  }
  // Sanity on the matrix size and that most pairings work.
  EXPECT_GT(pairs, 2000u);
  EXPECT_GT(static_cast<double>(successes) / static_cast<double>(pairs), 0.6);
}

TEST(CompatMatrix, EveryClientConnectsSomewhereInItsEra) {
  // Each config, in the month after release, must successfully negotiate
  // with at least one general-web segment of that month.
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  tls::core::Rng rng(7);
  for (const auto& profile : catalog.profiles()) {
    // Destination-routed specialists talk to their own segments.
    if (profile.name == "GridFTP" || profile.name == "Nagios NRPE" ||
        profile.name == "Nagios legacy check" ||
        profile.name == "Interwise" || profile.name == "Splunk Forwarder") {
      continue;
    }
    for (const auto& cfg : profile.versions) {
      const auto hello = tls::clients::make_client_hello(cfg, rng, "e.test");
      const tls::core::Month era =
          tls::core::Month(cfg.release) + 1;
      bool connected = false;
      for (const auto& seg : servers.segments()) {
        if (seg.special_destination) continue;
        if (seg.traffic_share.at(era) <= 0) continue;
        if (tls::handshake::negotiate(hello, seg.config, rng).success) {
          connected = true;
          break;
        }
      }
      EXPECT_TRUE(connected) << profile.name << " " << cfg.version_label;
    }
  }
}

}  // namespace
