// Live-ingestion daemon tests (DESIGN.md §16): wire-protocol codec units,
// credit/backpressure state machines, and real-socket end-to-end lanes —
// byte-identical determinism against batch mode, overload shedding with
// accounting closure, graceful drain with a parseable snapshot, and
// journal resume.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clients/catalog.hpp"
#include "core/study.hpp"
#include "daemon/capture.hpp"
#include "daemon/daemon.hpp"
#include "daemon/protocol.hpp"
#include "notary/monitor.hpp"
#include "notary/snapshot.hpp"
#include "population/market.hpp"
#include "population/traffic.hpp"
#include "servers/population.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight.hpp"

namespace {

using tls::daemon::CapturePayload;
using tls::daemon::CreditClient;
using tls::daemon::CreditGate;
using tls::daemon::DaemonConfig;
using tls::daemon::DecodeError;
using tls::daemon::Frame;
using tls::daemon::FrameDecoder;
using tls::daemon::FrameType;
using tls::daemon::NotaryDaemon;

std::vector<std::uint8_t> sample_payload() {
  return {0xde, 0xad, 0xbe, 0xef, 0x01};
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(DaemonProtocol, FrameRoundTripsThroughDecoder) {
  const auto payload = sample_payload();
  const auto bytes = tls::daemon::encode_frame(FrameType::kCapture, payload);
  EXPECT_EQ(bytes.size(), tls::daemon::kFrameHeaderBytes + payload.size() +
                              tls::daemon::kFrameTrailerBytes);
  FrameDecoder decoder;
  const auto frames = decoder.feed(bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kCapture);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(DaemonProtocol, DecoderReassemblesByteAtATime) {
  const auto payload = sample_payload();
  const auto bytes = tls::daemon::encode_frame(FrameType::kHello, payload);
  FrameDecoder decoder;
  std::vector<Frame> all;
  for (const auto b : bytes) {
    auto out = decoder.feed({&b, 1});
    for (auto& f : out) all.push_back(std::move(f));
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].payload, payload);
}

TEST(DaemonProtocol, DecoderEmitsMultipleFramesFromOneFeed) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    const auto f = tls::daemon::encode_frame(FrameType::kHello, {});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameDecoder decoder;
  EXPECT_EQ(decoder.feed(stream).size(), 3u);
}

TEST(DaemonProtocol, BadMagicPoisonsPermanently) {
  FrameDecoder decoder;
  const std::vector<std::uint8_t> junk = {0xFF, 0x00, 0x01, 0x02, 0x03,
                                          0x04, 0x05, 0x06, 0x07};
  EXPECT_TRUE(decoder.feed(junk).empty());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_EQ(decoder.error(), DecodeError::kBadMagic);
  EXPECT_FALSE(decoder.poison_prefix().empty());
  // Even a pristine frame is refused after poison.
  const auto good = tls::daemon::encode_frame(FrameType::kHello, {});
  EXPECT_TRUE(decoder.feed(good).empty());
}

TEST(DaemonProtocol, BitFlippedChecksumPoisons) {
  auto bytes = tls::daemon::encode_frame(FrameType::kCapture, sample_payload());
  bytes.back() ^= 0x40;
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(bytes).empty());
  EXPECT_EQ(decoder.error(), DecodeError::kBadChecksum);
}

TEST(DaemonProtocol, OversizedLengthRejectedAtHeaderTime) {
  // Declared length just past the limit: poisoned as soon as the 9-byte
  // header lands, long before any payload bytes exist to buffer.
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  std::vector<std::uint8_t> header = {
      0x54, 0x4C, 0x53, 0x4E,  // magic
      0x02,                    // kCapture
      0x00, 0x00, 0x04, 0x01,  // length 1025
  };
  EXPECT_TRUE(decoder.feed(header).empty());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_EQ(decoder.error(), DecodeError::kOversized);
  EXPECT_EQ(tls::daemon::parse_code_for(decoder.error()),
            tls::wire::ParseErrorCode::kBadLength);
}

TEST(DaemonProtocol, MaxFrameBytesBoundaryIsInclusive) {
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  const std::vector<std::uint8_t> payload(8, 0xAB);
  const auto ok = tls::daemon::encode_frame(FrameType::kHello, payload);
  EXPECT_EQ(decoder.feed(ok).size(), 1u);
  const std::vector<std::uint8_t> over(9, 0xAB);
  const auto bad = tls::daemon::encode_frame(FrameType::kHello, over);
  FrameDecoder second(/*max_frame_bytes=*/8);
  EXPECT_TRUE(second.feed(bad).empty());
  EXPECT_EQ(second.error(), DecodeError::kOversized);
}

TEST(DaemonProtocol, UnknownFrameTypePoisons) {
  auto bytes = tls::daemon::encode_frame(FrameType::kHello, {});
  bytes[4] = 0x7F;  // not a FrameType
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.feed(bytes).empty());
  EXPECT_EQ(decoder.error(), DecodeError::kBadType);
}

// ---------------------------------------------------------------------------
// Capture payload codec
// ---------------------------------------------------------------------------

TEST(DaemonProtocol, CaptureRoundTrip) {
  CapturePayload capture;
  capture.month_index = static_cast<std::uint32_t>(
      tls::core::Month(2016, 7).index());
  capture.day = tls::core::Date(2016, 7, 13);
  capture.success = true;
  capture.used_fallback = true;
  capture.client = {0x16, 0x03, 0x01, 0x00, 0x01, 0x01};
  capture.server = {0x16, 0x03, 0x03};
  capture.alert = {0x15, 0x03, 0x01};
  const auto bytes = tls::daemon::encode_capture(capture);
  const auto back = tls::daemon::decode_capture(bytes);
  EXPECT_EQ(back.month_index, capture.month_index);
  EXPECT_EQ(back.day, capture.day);
  EXPECT_EQ(back.success, capture.success);
  EXPECT_EQ(back.used_fallback, capture.used_fallback);
  EXPECT_EQ(back.sslv2, capture.sslv2);
  EXPECT_EQ(back.client, capture.client);
  EXPECT_EQ(back.server, capture.server);
  EXPECT_EQ(back.ske, capture.ske);
  EXPECT_EQ(back.alert, capture.alert);
}

TEST(DaemonProtocol, CaptureRejectsBadDateAndTrailingBytes) {
  CapturePayload capture;
  capture.day = tls::core::Date(2016, 2, 29);
  auto bytes = tls::daemon::encode_capture(capture);
  auto bad_date = bytes;
  bad_date[7] = 31;  // Feb 31 — invalid civil date
  EXPECT_THROW(tls::daemon::decode_capture(bad_date), tls::wire::ParseError);
  auto trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_THROW(tls::daemon::decode_capture(trailing), tls::wire::ParseError);
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW(tls::daemon::decode_capture(truncated), tls::wire::ParseError);
}

// ---------------------------------------------------------------------------
// Credit state machines
// ---------------------------------------------------------------------------

TEST(DaemonCredits, GateEnforcesWindowAndBatchesGrants) {
  CreditGate gate(2);
  EXPECT_TRUE(gate.consume());
  EXPECT_TRUE(gate.consume());
  EXPECT_FALSE(gate.consume());  // window exhausted
  EXPECT_EQ(gate.outstanding(), 2u);
  gate.complete();
  gate.complete();
  EXPECT_EQ(gate.outstanding(), 0u);
  EXPECT_EQ(gate.take_grant(), 2u);
  EXPECT_EQ(gate.take_grant(), 0u);  // drained
  EXPECT_TRUE(gate.consume());       // window restored
}

TEST(DaemonCredits, SpuriousCompleteClampsInsteadOfWrapping) {
  CreditGate gate(1);
  gate.complete();  // no matching consume
  EXPECT_EQ(gate.outstanding(), 0u);
  EXPECT_EQ(gate.take_grant(), 0u);
}

TEST(DaemonCredits, ClientSaturatesOnHostileGrants) {
  CreditClient client;
  EXPECT_FALSE(client.try_send());
  client.on_grant(UINT32_MAX);
  client.on_grant(UINT32_MAX);  // would wrap without saturation
  EXPECT_EQ(client.available(), UINT32_MAX);
  EXPECT_TRUE(client.try_send());
  EXPECT_EQ(client.available(), UINT32_MAX - 1);
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets
// ---------------------------------------------------------------------------

class BlockingClient {
 public:
  ~BlockingClient() { disconnect(); }

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  void disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send_bytes(std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const auto n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Blocks until `count` credits have accumulated (or the peer dies).
  bool await_credits(std::uint32_t count) {
    while (credits_.available() < count) {
      std::uint8_t buf[4096];
      const auto n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      for (auto& frame : decoder_.feed({buf, static_cast<std::size_t>(n)})) {
        if (frame.type == FrameType::kCreditGrant) {
          const auto grant = tls::daemon::decode_credit_grant(frame.payload);
          if (grant) credits_.on_grant(*grant);
        }
      }
      if (decoder_.poisoned()) return false;
    }
    return true;
  }

  /// Sends one capture, spending a credit (waits for one if needed).
  bool send_capture(const CapturePayload& capture) {
    if (!await_credits(1)) return false;
    EXPECT_TRUE(credits_.try_send());
    const auto payload = tls::daemon::encode_capture(capture);
    return send_bytes(tls::daemon::encode_frame(FrameType::kCapture, payload));
  }

  /// One request/reply exchange on this connection.
  bool query(FrameType request, FrameType reply, std::string* body) {
    if (!send_bytes(tls::daemon::encode_frame(request, {}))) return false;
    for (;;) {
      std::uint8_t buf[8192];
      const auto n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      for (auto& frame : decoder_.feed({buf, static_cast<std::size_t>(n)})) {
        if (frame.type == FrameType::kCreditGrant) {
          const auto grant = tls::daemon::decode_credit_grant(frame.payload);
          if (grant) credits_.on_grant(*grant);
        } else if (frame.type == reply) {
          body->assign(frame.payload.begin(), frame.payload.end());
          return true;
        }
      }
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  CreditClient credits_;
};

struct TrafficFixture {
  TrafficFixture()
      : catalog(tls::clients::Catalog::core_only()),
        database(tls::study::LongitudinalStudy::build_database(catalog)),
        servers(tls::servers::ServerPopulation::standard()),
        market(tls::population::MarketModel::standard(catalog)) {}

  std::vector<CapturePayload> make_captures(std::size_t count,
                                            std::uint64_t seed) {
    tls::population::TrafficGenerator gen(market, servers, seed);
    std::vector<CapturePayload> captures;
    captures.reserve(count);
    gen.generate_month(tls::core::Month(2016, 3), count,
                       [&](const tls::population::ConnectionEvent& event) {
                         captures.push_back(
                             tls::daemon::capture_from_event(event));
                       });
    return captures;
  }

  tls::clients::Catalog catalog;
  tls::fp::FingerprintDatabase database;
  tls::servers::ServerPopulation servers;
  tls::population::MarketModel market;
};

TrafficFixture& fixture() {
  static TrafficFixture f;
  return f;
}

/// Daemon-ingested aggregates must be byte-identical to batch-mode
/// observe_wire over the same capture stream: one connection, one shard,
/// so the observe call order matches exactly (the absorb-order-invariant
/// guarantee is exercised by the overload lane below).
TEST(DaemonEndToEnd, DeterministicAgainstBatchMode) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(400, 0xD5EED);

  DaemonConfig config;
  config.shards = 1;
  config.observe_cache_entries = 256;
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  BlockingClient client;
  ASSERT_TRUE(client.connect_to(daemon.port()));
  for (const auto& capture : captures) {
    ASSERT_TRUE(client.send_capture(capture));
  }
  // Round-trip a stats query until every capture is ingested (queries and
  // captures share the ordered connection, so one reply after the last
  // send means everything before it was admitted; poll for ingestion).
  for (int i = 0; i < 200; ++i) {
    if (daemon.counters().ingested == captures.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(daemon.counters().ingested, captures.size());

  // Reference: the identical stream through batch-mode observe_wire on a
  // monitor configured exactly like the daemon's shard, absorbed the same
  // way the daemon aggregates.
  tls::notary::PassiveMonitor reference(&fix.database);
  reference.set_observe_cache_capacity(256);
  for (const auto& c : captures) {
    const auto month = tls::core::Month(
        static_cast<int>(c.month_index / 12),
        static_cast<int>(c.month_index % 12) + 1);
    if (c.sslv2) {
      reference.observe_sslv2(month);
    } else {
      reference.observe_wire(month, c.day, c.client, c.server, c.ske,
                             c.success, c.used_fallback, c.alert, true);
    }
  }
  tls::notary::PassiveMonitor expected(&fix.database);
  expected.absorb(reference);

  const auto daemon_state =
      tls::notary::encode_monitor_state(daemon.aggregate_monitor());
  const auto batch_state = tls::notary::encode_monitor_state(expected);
  EXPECT_EQ(daemon_state, batch_state);

  daemon.request_stop();
  daemon.join();
  const auto c = daemon.counters();
  EXPECT_EQ(c.offered, captures.size());
  EXPECT_EQ(c.offered, c.ingested + c.shed + c.malformed);
}

/// Overload: tiny queues + an artificial observe cost + a sender that
/// ignores nothing (it respects credits, so overload manifests as shed
/// at the daemon, drops at the client — never unbounded queues). The
/// ledger must close exactly.
TEST(DaemonEndToEnd, OverloadShedsWithExactClosure) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(300, 0x10AD);

  DaemonConfig config;
  config.shards = 1;
  config.shard_queue_depth = 4;
  config.credit_window = 64;
  config.observe_delay_us_for_test = 2000;  // ~500/s capacity
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  BlockingClient client;
  ASSERT_TRUE(client.connect_to(daemon.port()));
  std::size_t sent = 0;
  for (const auto& capture : captures) {
    if (!client.send_capture(capture)) break;
    ++sent;
  }
  EXPECT_EQ(sent, captures.size());
  // Captures still in the socket buffer at stop time would be honestly
  // lost to the connection teardown; wait until the daemon has read (and
  // accounted) everything we sent before draining.
  for (int i = 0; i < 500; ++i) {
    if (daemon.counters().offered == sent) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  daemon.request_stop();
  daemon.join();
  const auto c = daemon.counters();
  EXPECT_EQ(c.offered, sent);
  EXPECT_GT(c.shed, 0u) << "queue depth 4 at 2ms/observe must shed";
  EXPECT_GT(c.ingested, 0u);
  EXPECT_EQ(c.malformed, 0u);
  EXPECT_EQ(c.offered, c.ingested + c.shed + c.malformed);
}

TEST(DaemonEndToEnd, MalformedAndGarbageAreBookedNotFatal) {
  auto& fix = fixture();
  DaemonConfig config;
  config.shards = 1;
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  {
    // A checksum-valid frame whose capture payload is garbage: counted as
    // malformed, connection survives.
    BlockingClient client;
    ASSERT_TRUE(client.connect_to(daemon.port()));
    ASSERT_TRUE(client.await_credits(1));
    const std::vector<std::uint8_t> junk = {0x01, 0x02, 0x03};
    ASSERT_TRUE(client.send_bytes(
        tls::daemon::encode_frame(FrameType::kCapture, junk)));
    std::string body;
    EXPECT_TRUE(client.query(FrameType::kQueryStats, FrameType::kStats, &body))
        << "connection must survive a malformed capture";
  }
  {
    // Raw garbage bytes: the decoder poisons and the daemon books a frame
    // error and closes — the process itself shrugs. Keep the connection
    // open until the error is booked: closing with the unread credit
    // grant pending would RST the socket and discard the garbage.
    BlockingClient client;
    ASSERT_TRUE(client.connect_to(daemon.port()));
    const std::vector<std::uint8_t> garbage(64, 0xEE);
    client.send_bytes(garbage);
    for (int i = 0; i < 200; ++i) {
      if (daemon.counters().frame_errors > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  daemon.request_stop();
  daemon.join();
  const auto c = daemon.counters();
  EXPECT_EQ(c.malformed, 1u);
  EXPECT_GE(c.frame_errors, 1u);
  EXPECT_EQ(c.offered, c.ingested + c.shed + c.malformed);
}

TEST(DaemonEndToEnd, StatsAndMetricsQueriesServeLiveAggregates) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(50, 0x57A7);
  DaemonConfig config;
  config.shards = 2;
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  BlockingClient client;
  ASSERT_TRUE(client.connect_to(daemon.port()));
  for (const auto& capture : captures) {
    ASSERT_TRUE(client.send_capture(capture));
  }
  std::string stats;
  ASSERT_TRUE(client.query(FrameType::kQueryStats, FrameType::kStats, &stats));
  EXPECT_NE(stats.find("offered=50"), std::string::npos) << stats;
  std::string prom;
  ASSERT_TRUE(
      client.query(FrameType::kQueryMetrics, FrameType::kMetrics, &prom));
  EXPECT_NE(prom.find("tls_repro_daemon_offered_total"), std::string::npos);
  // The exposition must satisfy the repo's own Prometheus linter.
  const auto problems = tls::telemetry::lint_prometheus(prom);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());

  daemon.request_stop();
  daemon.join();
}

TEST(DaemonEndToEnd, DrainWritesSnapshotAndResumeRestoresAggregate) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(120, 0xCAFE);
  const auto dir =
      std::filesystem::temp_directory_path() / "tls_daemon_resume_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<std::uint8_t> first_state;
  {
    DaemonConfig config;
    config.shards = 2;
    config.database = &fix.database;
    config.checkpoint_dir = dir.string();
    NotaryDaemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.last_error();
    BlockingClient client;
    ASSERT_TRUE(client.connect_to(daemon.port()));
    for (const auto& capture : captures) {
      ASSERT_TRUE(client.send_capture(capture));
    }
    std::string body;
    ASSERT_TRUE(client.query(FrameType::kQueryStats, FrameType::kStats, &body));
    daemon.request_stop();
    daemon.join();
    first_state = tls::notary::encode_monitor_state(daemon.aggregate_monitor());
    EXPECT_EQ(daemon.counters().ingested, captures.size());
  }
  // The drain must have produced both snapshot artifacts.
  EXPECT_TRUE(std::filesystem::exists(dir / "SNAPSHOT.bin"));
  {
    std::ifstream txt(dir / "SNAPSHOT.txt");
    std::string content((std::istreambuf_iterator<char>(txt)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("clean_drain=1"), std::string::npos);
    EXPECT_NE(content.find("ingested=120"), std::string::npos);
  }
  {
    // Resume: the baseline restored from the journal must reproduce the
    // pre-restart aggregate bit-exactly before any new capture arrives.
    DaemonConfig config;
    config.shards = 2;
    config.database = &fix.database;
    config.checkpoint_dir = dir.string();
    config.resume = true;
    NotaryDaemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.last_error();
    EXPECT_EQ(daemon.resumed_epoch(), 1u);
    const auto resumed_state =
        tls::notary::encode_monitor_state(daemon.aggregate_monitor());
    EXPECT_EQ(resumed_state, first_state);
    daemon.request_stop();
    daemon.join();
  }
  std::filesystem::remove_all(dir);
}

TEST(DaemonEndToEnd, CreditViolationShedsAndCloses) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(8, 0xBAD);
  DaemonConfig config;
  config.shards = 1;
  config.credit_window = 2;
  config.observe_delay_us_for_test = 50000;  // keep credits outstanding
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  BlockingClient client;
  ASSERT_TRUE(client.connect_to(daemon.port()));
  ASSERT_TRUE(client.await_credits(2));
  // Send 4 captures against a window of 2 without waiting for grants: the
  // two over-window sends are credit violations.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto payload = tls::daemon::encode_capture(captures[i]);
    if (!client.send_bytes(
            tls::daemon::encode_frame(FrameType::kCapture, payload))) {
      break;
    }
  }
  for (int i = 0; i < 200; ++i) {
    if (daemon.counters().credit_violations > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  daemon.request_stop();
  daemon.join();
  const auto c = daemon.counters();
  EXPECT_GE(c.credit_violations, 1u);
  EXPECT_EQ(c.offered, c.ingested + c.shed + c.malformed);
}

// ---------------------------------------------------------------------------
// Observability plane (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// The core invariant of the observability plane: turning it off must not
/// change a single byte of the scientific output. Same stream, two
/// daemons, identical aggregate monitor state and identical ledgers.
TEST(DaemonObservability, OnVersusOffMonitorStateIsByteIdentical) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(300, 0x0B5E);

  const auto run = [&](bool observability) {
    DaemonConfig config;
    config.shards = 1;
    config.observe_cache_entries = 128;
    config.observability = observability;
    config.database = &fix.database;
    NotaryDaemon daemon(config);
    EXPECT_TRUE(daemon.start()) << daemon.last_error();
    BlockingClient client;
    EXPECT_TRUE(client.connect_to(daemon.port()));
    for (const auto& capture : captures) {
      EXPECT_TRUE(client.send_capture(capture));
    }
    for (int i = 0; i < 500; ++i) {
      if (daemon.counters().ingested == captures.size()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(daemon.counters().ingested, captures.size());
    auto state = tls::notary::encode_monitor_state(daemon.aggregate_monitor());
    daemon.request_stop();
    daemon.join();
    const auto c = daemon.counters();
    EXPECT_EQ(c.offered, c.ingested + c.shed + c.malformed);
    return state;
  };

  EXPECT_EQ(run(true), run(false));
}

/// Stats snapshots served under concurrent load must be monotonic between
/// polls AND internally closure-consistent at every single poll — the
/// seqlock must never publish a state where a capture is counted ingested
/// but not yet offered, or admitted but missing from admission.
TEST(DaemonObservability, StatsSnapshotsAreMonotonicAndClosureConsistent) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(400, 0x5E9);

  DaemonConfig config;
  config.shards = 2;
  config.observe_delay_us_for_test = 100;  // keep ingestion mid-flight
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  std::thread sender([&] {
    BlockingClient client;
    if (!client.connect_to(daemon.port())) return;
    for (const auto& capture : captures) {
      if (!client.send_capture(capture)) return;
    }
  });

  const auto field = [](const std::string& body, const char* key) {
    const auto pos = body.find(std::string(key) + "=");
    EXPECT_NE(pos, std::string::npos) << key << " missing in:\n" << body;
    return std::strtoull(body.c_str() + pos + std::strlen(key) + 1, nullptr,
                         10);
  };

  BlockingClient poller;
  ASSERT_TRUE(poller.connect_to(daemon.port()));
  std::uint64_t prev_offered = 0, prev_ingested = 0, prev_shed = 0;
  std::uint64_t prev_malformed = 0;
  int polls = 0;
  // Poll while the sender is racing; every snapshot must be consistent.
  while (daemon.counters().ingested < captures.size() && polls < 2000) {
    std::string body;
    ASSERT_TRUE(poller.query(FrameType::kQueryStats, FrameType::kStats,
                             &body));
    ++polls;
    const auto offered = field(body, "offered");
    const auto admitted = field(body, "admitted");
    const auto ingested = field(body, "ingested");
    const auto shed = field(body, "shed");
    const auto malformed = field(body, "malformed");
    // Closure: nothing is ever counted resolved without being offered.
    ASSERT_GE(offered, ingested + shed + malformed) << body;
    ASSERT_GE(admitted, ingested) << body;
    ASSERT_GE(offered, admitted + shed + malformed) << body;
    // Monotonic between polls.
    ASSERT_GE(offered, prev_offered);
    ASSERT_GE(ingested, prev_ingested);
    ASSERT_GE(shed, prev_shed);
    ASSERT_GE(malformed, prev_malformed);
    prev_offered = offered;
    prev_ingested = ingested;
    prev_shed = shed;
    prev_malformed = malformed;
  }
  sender.join();
  EXPECT_GT(polls, 0);
  daemon.request_stop();
  daemon.join();
  const auto c = daemon.counters();
  EXPECT_EQ(c.offered, c.ingested + c.shed + c.malformed);
}

/// kQueryTrace serves the stage-latency waterfall: per-stage percentile
/// lines with real counts plus slowest-frame exemplars carrying per-stage
/// attribution.
TEST(DaemonObservability, QueryTraceServesStageWaterfall) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(120, 0x7ACE);

  DaemonConfig config;
  config.shards = 1;
  config.trace_window_ms = 3600 * 1000;  // keep this run in one window
  config.trace_exemplars = 4;
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  BlockingClient client;
  ASSERT_TRUE(client.connect_to(daemon.port()));
  for (const auto& capture : captures) {
    ASSERT_TRUE(client.send_capture(capture));
  }
  for (int i = 0; i < 500; ++i) {
    if (daemon.counters().ingested == captures.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(daemon.counters().ingested, captures.size());

  std::string body;
  ASSERT_TRUE(client.query(FrameType::kQueryTrace, FrameType::kTrace, &body));
  for (const char* stage :
       {"decode", "enqueue", "queue", "observe", "complete", "grant",
        "total"}) {
    EXPECT_NE(body.find(std::string("stage ") + stage), std::string::npos)
        << "missing stage " << stage << " in:\n" << body;
  }
  // Every ingested frame was attributed.
  const auto total_pos = body.find("stage total count=");
  ASSERT_NE(total_pos, std::string::npos) << body;
  EXPECT_EQ(std::strtoull(body.c_str() + total_pos +
                              std::strlen("stage total count="),
                          nullptr, 10),
            captures.size());
  EXPECT_NE(body.find("exemplar rank="), std::string::npos) << body;
  EXPECT_NE(body.find("total_us="), std::string::npos) << body;

  // The Chrome-trace export is valid JSON carrying the same exemplars.
  const auto chrome = daemon.trace_chrome();
  EXPECT_TRUE(tls::telemetry::json_syntax_valid(chrome)) << chrome;

  daemon.request_stop();
  daemon.join();

  // With observability off the query still answers, but reports so.
  DaemonConfig off;
  off.shards = 1;
  off.observability = false;
  off.database = &fix.database;
  NotaryDaemon dark(off);
  ASSERT_TRUE(dark.start()) << dark.last_error();
  BlockingClient dark_client;
  ASSERT_TRUE(dark_client.connect_to(dark.port()));
  std::string dark_body;
  ASSERT_TRUE(dark_client.query(FrameType::kQueryTrace, FrameType::kTrace,
                                &dark_body));
  EXPECT_NE(dark_body.find("observability=off"), std::string::npos);
  dark.request_stop();
  dark.join();
}

/// kQueryFlight serves a live FLIGHT.bin image that decodes cleanly and
/// contains the lifecycle events this very exchange produced.
TEST(DaemonObservability, QueryFlightServesDecodableDump) {
  auto& fix = fixture();
  const auto captures = fix.make_captures(50, 0xF117);

  DaemonConfig config;
  config.shards = 2;
  config.flight_events = 256;
  config.database = &fix.database;
  NotaryDaemon daemon(config);
  ASSERT_TRUE(daemon.start()) << daemon.last_error();

  BlockingClient client;
  ASSERT_TRUE(client.connect_to(daemon.port()));
  for (const auto& capture : captures) {
    ASSERT_TRUE(client.send_capture(capture));
  }
  for (int i = 0; i < 500; ++i) {
    if (daemon.counters().ingested == captures.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::string body;
  ASSERT_TRUE(client.query(FrameType::kQueryFlight, FrameType::kFlight,
                           &body));
  ASSERT_FALSE(body.empty());
  const auto dump = tls::telemetry::decode_flight(
      {reinterpret_cast<const std::uint8_t*>(body.data()), body.size()});
  ASSERT_TRUE(dump.ok);
  EXPECT_TRUE(dump.checksum_ok);
  EXPECT_EQ(dump.crash_signo, 0u);
  ASSERT_EQ(dump.totals.size(), 1u + 2u);  // event loop + one lane per shard
  EXPECT_EQ(dump.ring_capacity, 256u);

  std::uint64_t accepts = 0, admits = 0, ingests = 0, dumps = 0;
  for (const auto& e : dump.events) {
    using tls::telemetry::FlightEventKind;
    switch (static_cast<FlightEventKind>(e.kind)) {
      case FlightEventKind::kConnAccept: ++accepts; break;
      case FlightEventKind::kAdmit: ++admits; break;
      case FlightEventKind::kIngest: ++ingests; break;
      case FlightEventKind::kFlightDump: ++dumps; break;
      default: break;
    }
  }
  EXPECT_GE(accepts, 1u);
  EXPECT_EQ(admits, captures.size());
  EXPECT_EQ(ingests, captures.size());
  EXPECT_GE(dumps, 1u);  // the query itself books a dump event

  const auto text = tls::telemetry::render_flight(
      {reinterpret_cast<const std::uint8_t*>(body.data()), body.size()});
  EXPECT_NE(text.find("checksum=ok"), std::string::npos);

  daemon.request_stop();
  daemon.join();

  // Observability off -> kFlight answers with an empty payload.
  DaemonConfig off;
  off.shards = 1;
  off.observability = false;
  off.database = &fix.database;
  NotaryDaemon dark(off);
  ASSERT_TRUE(dark.start()) << dark.last_error();
  BlockingClient dark_client;
  ASSERT_TRUE(dark_client.connect_to(dark.port()));
  std::string dark_body = "sentinel";
  ASSERT_TRUE(dark_client.query(FrameType::kQueryFlight, FrameType::kFlight,
                                &dark_body));
  EXPECT_TRUE(dark_body.empty());
  dark.request_stop();
  dark.join();
}

}  // namespace
