#include <gtest/gtest.h>

#include "tlscore/dates.hpp"

namespace tls::core {
namespace {

TEST(Date, ValidConstruction) {
  const Date d(2018, 4, 30);
  EXPECT_EQ(d.year(), 2018);
  EXPECT_EQ(d.month(), 4);
  EXPECT_EQ(d.day(), 30);
}

TEST(Date, RejectsInvalidMonth) {
  EXPECT_THROW(Date(2018, 0, 1), std::invalid_argument);
  EXPECT_THROW(Date(2018, 13, 1), std::invalid_argument);
}

TEST(Date, RejectsInvalidDay) {
  EXPECT_THROW(Date(2018, 4, 31), std::invalid_argument);
  EXPECT_THROW(Date(2018, 2, 30), std::invalid_argument);
  EXPECT_THROW(Date(2018, 1, 0), std::invalid_argument);
}

TEST(Date, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2016));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2018));
  EXPECT_EQ(days_in_month(2016, 2), 29);
  EXPECT_EQ(days_in_month(2018, 2), 28);
  EXPECT_NO_THROW(Date(2016, 2, 29));
  EXPECT_THROW(Date(2018, 2, 29), std::invalid_argument);
}

TEST(Date, EpochAnchor) {
  EXPECT_EQ(Date(1970, 1, 1).to_days(), 0);
  EXPECT_EQ(Date(1970, 1, 2).to_days(), 1);
  EXPECT_EQ(Date(1969, 12, 31).to_days(), -1);
}

TEST(Date, RoundTripThroughDays) {
  // Sweep every day of the study window.
  for (std::int64_t d = Date(2012, 1, 1).to_days();
       d <= Date(2018, 12, 31).to_days(); ++d) {
    EXPECT_EQ(Date::from_days(d).to_days(), d);
  }
}

TEST(Date, Ordering) {
  EXPECT_LT(Date(2014, 4, 7), Date(2014, 10, 14));
  EXPECT_EQ(Date(2014, 4, 7), Date(2014, 4, 7));
  EXPECT_GT(Date(2015, 1, 1), Date(2014, 12, 31));
}

TEST(Date, ParseAndFormat) {
  EXPECT_EQ(Date::parse("2014-04-07"), Date(2014, 4, 7));
  EXPECT_EQ(Date(2014, 4, 7).to_string(), "2014-04-07");
  EXPECT_THROW(Date::parse("not a date"), std::invalid_argument);
  EXPECT_THROW(Date::parse("2014-04"), std::invalid_argument);
  EXPECT_THROW(Date::parse("2014-04-07x"), std::invalid_argument);
}

TEST(Month, ArithmeticAndFields) {
  Month m(2012, 2);
  EXPECT_EQ(m.year(), 2012);
  EXPECT_EQ(m.month(), 2);
  EXPECT_EQ((m + 11).to_string(), "2013-01");
  EXPECT_EQ(Month(2018, 4) - Month(2012, 2), 74);
  ++m;
  EXPECT_EQ(m, Month(2012, 3));
}

TEST(Month, FromDateAndFirstDay) {
  EXPECT_EQ(Month(Date(2014, 10, 14)), Month(2014, 10));
  EXPECT_EQ(Month(2014, 10).first_day(), Date(2014, 10, 1));
}

TEST(Month, Parse) {
  EXPECT_EQ(Month::parse("2015-08"), Month(2015, 8));
  EXPECT_THROW(Month::parse("2015"), std::invalid_argument);
  EXPECT_THROW(Month(2015, 13), std::invalid_argument);
}

TEST(MonthRange, SizeAndContains) {
  const MonthRange r{Month(2012, 2), Month(2018, 4)};
  EXPECT_EQ(r.size(), 75);
  EXPECT_TRUE(r.contains(Month(2015, 1)));
  EXPECT_TRUE(r.contains(Month(2012, 2)));
  EXPECT_TRUE(r.contains(Month(2018, 4)));
  EXPECT_FALSE(r.contains(Month(2018, 5)));
  EXPECT_FALSE(r.contains(Month(2012, 1)));
}

TEST(MonthRange, StudyWindows) {
  EXPECT_EQ(notary_window().begin_month, Month(2012, 2));
  EXPECT_EQ(notary_window().end_month, Month(2018, 4));
  EXPECT_EQ(censys_window().begin_month, Month(2015, 8));
  EXPECT_EQ(censys_window().end_month, Month(2018, 5));
}

}  // namespace
}  // namespace tls::core
