#include <gtest/gtest.h>

#include "wire/extension_codec.hpp"

namespace tls::wire {
namespace {

using tls::core::ExtensionType;

TEST(ExtensionCodec, ServerNameRoundTrip) {
  const auto ext = make_server_name("example.org");
  EXPECT_EQ(ext.type, 0);
  EXPECT_EQ(parse_server_name(ext.body), "example.org");
}

TEST(ExtensionCodec, ServerNameRejectsNonHostType) {
  auto ext = make_server_name("x");
  ext.body[2] = 1;  // name_type
  EXPECT_THROW(parse_server_name(ext.body), ParseError);
}

TEST(ExtensionCodec, SupportedGroupsRoundTrip) {
  const std::uint16_t groups[] = {29, 23, 24};
  const auto ext = make_supported_groups(groups);
  EXPECT_EQ(ext.type, 10);
  const auto parsed = parse_supported_groups(ext.body);
  EXPECT_EQ(parsed, std::vector<std::uint16_t>({29, 23, 24}));
}

TEST(ExtensionCodec, EcPointFormatsRoundTrip) {
  const std::uint8_t formats[] = {0, 1, 2};
  const auto ext = make_ec_point_formats(formats);
  EXPECT_EQ(parse_ec_point_formats(ext.body),
            std::vector<std::uint8_t>({0, 1, 2}));
}

TEST(ExtensionCodec, SupportedVersionsClientRoundTrip) {
  const std::uint16_t versions[] = {0x7f1c, 0x0304, 0x0303};
  const auto ext = make_supported_versions_client(versions);
  EXPECT_EQ(ext.type, 43);
  EXPECT_EQ(parse_supported_versions_client(ext.body),
            std::vector<std::uint16_t>({0x7f1c, 0x0304, 0x0303}));
}

TEST(ExtensionCodec, SupportedVersionsServerRoundTrip) {
  const auto ext = make_supported_versions_server(0x7e02);
  EXPECT_EQ(parse_supported_versions_server(ext.body), 0x7e02);
}

TEST(ExtensionCodec, SupportedVersionsRejectsOddBody) {
  std::uint8_t body[] = {3, 0x03, 0x04, 0x7f};
  EXPECT_THROW(parse_supported_versions_client(body), ParseError);
}

TEST(ExtensionCodec, SignatureAlgorithmsRoundTrip) {
  const std::uint16_t schemes[] = {0x0403, 0x0804};
  const auto ext = make_signature_algorithms(schemes);
  EXPECT_EQ(parse_signature_algorithms(ext.body),
            std::vector<std::uint16_t>({0x0403, 0x0804}));
}

TEST(ExtensionCodec, AlpnRoundTrip) {
  const std::vector<std::string> protos = {"h2", "http/1.1"};
  const auto ext = make_alpn(protos);
  EXPECT_EQ(parse_alpn(ext.body), protos);
}

TEST(ExtensionCodec, HeartbeatRoundTrip) {
  const auto ext = make_heartbeat(1);
  EXPECT_EQ(ext.type, 15);
  EXPECT_EQ(parse_heartbeat(ext.body), 1);
  EXPECT_EQ(parse_heartbeat(make_heartbeat(2).body), 2);
}

TEST(ExtensionCodec, HeartbeatRejectsBadMode) {
  std::uint8_t body[] = {3};
  EXPECT_THROW(parse_heartbeat(body), ParseError);
}

TEST(ExtensionCodec, KeyShareClientRoundTrip) {
  const std::uint16_t groups[] = {29, 23};
  const auto ext = make_key_share_client(groups);
  EXPECT_EQ(parse_key_share_client_groups(ext.body),
            std::vector<std::uint16_t>({29, 23}));
}

TEST(ExtensionCodec, KeyShareServerRoundTrip) {
  const auto ext = make_key_share_server(29);
  EXPECT_EQ(parse_key_share_server_group(ext.body), 29);
}

TEST(ExtensionCodec, EmptyBodiedExtensions) {
  EXPECT_TRUE(make_encrypt_then_mac().body.empty());
  EXPECT_TRUE(make_extended_master_secret().body.empty());
  EXPECT_TRUE(make_sct().body.empty());
  EXPECT_TRUE(make_session_ticket().body.empty());
  EXPECT_EQ(make_padding(16).body.size(), 16u);
  EXPECT_EQ(make_renegotiation_info().body.size(), 1u);
}

TEST(ExtensionCodec, GreaseExtension) {
  const auto ext = make_grease_extension(0x3a3a);
  EXPECT_EQ(ext.type, 0x3a3a);
  EXPECT_TRUE(ext.body.empty());
}

TEST(ExtensionCodec, FindExtension) {
  std::vector<Extension> exts = {make_server_name("a"), make_heartbeat(1)};
  EXPECT_NE(find_extension(exts, ExtensionType::kHeartbeat), nullptr);
  EXPECT_EQ(find_extension(exts, ExtensionType::kAlpn), nullptr);
  EXPECT_EQ(find_extension(exts, std::uint16_t{0}), &exts[0]);
}

}  // namespace
}  // namespace tls::wire
