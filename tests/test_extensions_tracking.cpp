// Tests for the §9 extension-deployment tracking, the extended fingerprint
// variant, the popularity-weighted scan, and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/csv.hpp"
#include "fingerprint/fingerprint.hpp"
#include "notary/monitor.hpp"
#include "scan/scanner.hpp"

namespace {

using tls::core::Month;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

ClientHello hello_with_extensions() {
  ClientHello ch;
  ch.legacy_version = 0x0303;
  ch.cipher_suites = {0xc02f, 0xc013};
  const std::uint16_t groups[] = {23};
  ch.extensions.push_back(tls::wire::make_server_name("e.test"));
  ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  ch.extensions.push_back(tls::wire::make_renegotiation_info());
  ch.extensions.push_back(tls::wire::make_encrypt_then_mac());
  ch.extensions.push_back(tls::wire::make_extended_master_secret());
  ch.extensions.push_back(tls::wire::make_session_ticket());
  return ch;
}

TEST(ExtensionTracking, OfferedCounters) {
  tls::notary::PassiveMonitor mon;
  const auto ch = hello_with_extensions();
  ServerHello sh;
  sh.cipher_suite = 0xc013;
  sh.extensions.push_back(tls::wire::make_renegotiation_info());
  sh.extensions.push_back(tls::wire::make_encrypt_then_mac());
  mon.observe_wire(Month(2017, 1), tls::core::Date(2017, 1, 5),
                   ch.serialize_record(), sh.serialize_record(), {}, true);
  const auto* s = mon.month(Month(2017, 1));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->reneg_info_offered, 1u);
  EXPECT_EQ(s->etm_offered, 1u);
  EXPECT_EQ(s->ems_offered, 1u);
  EXPECT_EQ(s->sni_offered, 1u);
  EXPECT_EQ(s->session_ticket_offered, 1u);
  EXPECT_EQ(s->reneg_info_negotiated, 1u);
  EXPECT_EQ(s->etm_negotiated, 1u);
  EXPECT_EQ(s->ems_negotiated, 0u);
}

TEST(ExtensionTracking, RieScsvCountsAsOffered) {
  tls::notary::PassiveMonitor mon;
  ClientHello ch;
  ch.legacy_version = 0x0301;
  ch.cipher_suites = {0x002f, 0x00ff};  // RIE via SCSV, not extension
  mon.observe_wire(Month(2013, 1), tls::core::Date(2013, 1, 5),
                   ch.serialize_record(), {}, {}, false);
  EXPECT_EQ(mon.month(Month(2013, 1))->reneg_info_offered, 1u);
}

TEST(ExtensionTracking, AlertAccounting) {
  tls::notary::PassiveMonitor mon;
  ClientHello ch;
  ch.cipher_suites = {0x002f};
  tls::wire::Alert alert;
  alert.description = tls::wire::AlertDescription::kProtocolVersion;
  mon.observe_wire(Month(2015, 1), tls::core::Date(2015, 1, 5),
                   ch.serialize_record(), {}, {}, false, false,
                   alert.serialize_record(0x0301));
  const auto* s = mon.month(Month(2015, 1));
  EXPECT_EQ(s->alert_count(70), 1u);  // protocol_version
  EXPECT_EQ(s->failures, 1u);
}

TEST(EtmSemantics, OnlyEchoedForCbcSuites) {
  // RFC 7366: no EtM extension when an AEAD suite is chosen.
  tls::servers::ServerConfig server;
  server.cipher_preference = {0xc02f, 0xc013};
  server.supports_etm = true;
  auto ch = hello_with_extensions();
  tls::core::Rng rng(3);
  auto r = tls::handshake::negotiate(ch, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0xc02f);  // AEAD
  EXPECT_FALSE(r.server_hello->has_extension(
      tls::core::ExtensionType::kEncryptThenMac));

  server.cipher_preference = {0xc013};  // CBC only
  r = tls::handshake::negotiate(ch, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.server_hello->has_extension(
      tls::core::ExtensionType::kEncryptThenMac));
}

TEST(ExtendedFingerprint, IncludesVersionCompressionSigAlgs) {
  auto ch = hello_with_extensions();
  const std::uint16_t sig[] = {0x0403, 0x0401};
  ch.extensions.push_back(tls::wire::make_signature_algorithms(sig));
  const auto base = tls::fp::extended_fingerprint_hash(ch);

  auto v = ch;
  v.legacy_version = 0x0302;
  EXPECT_NE(tls::fp::extended_fingerprint_hash(v), base);
  EXPECT_EQ(tls::fp::extract_fingerprint(v).hash(),
            tls::fp::extract_fingerprint(ch).hash());

  auto c = ch;
  c.compression_methods = {1, 0};
  EXPECT_NE(tls::fp::extended_fingerprint_hash(c), base);
  EXPECT_EQ(tls::fp::extract_fingerprint(c).hash(),
            tls::fp::extract_fingerprint(ch).hash());

  auto s2 = ch;
  const std::uint16_t sig2[] = {0x0401, 0x0403};  // reordered values
  s2.extensions.back() = tls::wire::make_signature_algorithms(sig2);
  EXPECT_NE(tls::fp::extended_fingerprint_hash(s2), base);
  EXPECT_EQ(tls::fp::extract_fingerprint(s2).hash(),
            tls::fp::extract_fingerprint(ch).hash());
}

TEST(ExtendedFingerprint, StringShape) {
  auto ch = hello_with_extensions();
  const auto s = tls::fp::extended_fingerprint_string(ch);
  // version|restricted|compression|sigalgs
  EXPECT_EQ(std::count(s.begin(), s.end(), '|'), 3);
  EXPECT_EQ(s.rfind("771|", 0), 0u);
}

TEST(PopularScan, DiffersFromHostScan) {
  const auto pop = tls::servers::ServerPopulation::standard();
  const tls::scan::ActiveScanner scanner(pop);
  const Month m(2017, 6);
  const auto hosts = scanner.scan(m);
  const auto popular = scanner.scan_popular(m);
  // Popular (traffic-weighted) sites are more modern than the IPv4 tail.
  EXPECT_GT(popular.chooses_aead, hosts.chooses_aead);
  EXPECT_LT(popular.ssl3_support, hosts.ssl3_support);
  EXPECT_LT(popular.rc4_support, hosts.rc4_support);
}

TEST(CsvExport, WritesChartFile) {
  tls::analysis::MonthlyChart chart;
  chart.range = {Month(2015, 1), Month(2015, 3)};
  chart.series.push_back({"a", {1, 2, 3}});
  const auto path =
      (std::filesystem::temp_directory_path() / "tls_test_chart.csv").string();
  tls::analysis::write_csv_file(path, chart);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "month,a");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "2015-01,1");
  std::filesystem::remove(path);
}

TEST(CsvExport, WritesScanFile) {
  const auto pop = tls::servers::ServerPopulation::standard();
  const tls::scan::ActiveScanner scanner(pop);
  std::vector<tls::scan::ScanSnapshot> snaps = {scanner.scan(Month(2016, 1))};
  const auto path =
      (std::filesystem::temp_directory_path() / "tls_test_scan.csv").string();
  tls::analysis::write_scan_csv_file(path, snaps);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("ssl3_support"), std::string::npos);
  EXPECT_EQ(row.rfind("2016-01,", 0), 0u);
  std::filesystem::remove(path);
}

TEST(CsvExport, ThrowsOnUnwritablePath) {
  tls::analysis::MonthlyChart chart;
  chart.range = {Month(2015, 1), Month(2015, 1)};
  chart.series.push_back({"a", {1}});
  EXPECT_THROW(
      tls::analysis::write_csv_file("/no/such/dir/file.csv", chart),
      std::runtime_error);
}

}  // namespace
