// The chaos tap itself: the FaultInjector's determinism contract (a
// (config, seed) pair always produces the same corrupted bytes), the
// byte-level mutation primitives, and the scan-side probe engine's
// deterministic retry/backoff schedule.
#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "faults/network.hpp"
#include "scan/scanner.hpp"
#include "servers/population.hpp"
#include "wire/record.hpp"
#include "wire/transcript.hpp"

namespace tls::faults {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes sample_stream(int records = 3, std::size_t frag = 20) {
  Bytes out;
  for (int r = 0; r < records; ++r) {
    tls::wire::Record rec;
    rec.type = tls::wire::ContentType::kHandshake;
    rec.fragment.assign(frag, static_cast<std::uint8_t>(0x40 + r));
    const auto bytes = rec.serialize();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

TEST(FaultConfig, TotalsAndSplits) {
  EXPECT_EQ(FaultConfig{}.total(), 0.0);
  EXPECT_NEAR(FaultConfig::uniform(0.4).total(), 0.4, 1e-12);
  const auto bytes = FaultConfig::bytes_only(0.3);
  EXPECT_NEAR(bytes.total(), 0.3, 1e-12);
  EXPECT_EQ(bytes.drop_flight, 0.0);
  EXPECT_EQ(bytes.one_sided, 0.0);
}

TEST(FaultInjector, ZeroRateIsIdentity) {
  FaultInjector inj(FaultConfig{}, 1);
  for (int i = 0; i < 200; ++i) {
    Bytes stream = sample_stream();
    const Bytes before = stream;
    EXPECT_EQ(inj.corrupt_stream(stream), FaultKind::kNone);
    EXPECT_EQ(stream, before);
  }
  EXPECT_EQ(inj.stats().total_faults(), 0u);
  EXPECT_EQ(inj.stats().streams_seen, 200u);
}

TEST(FaultInjector, SameSeedSameCorruption) {
  FaultInjector a(FaultConfig::uniform(0.8), 42);
  FaultInjector b(FaultConfig::uniform(0.8), 42);
  for (int i = 0; i < 500; ++i) {
    Bytes ca = sample_stream(2 + i % 3);
    Bytes sa = sample_stream(3);
    Bytes cb = ca;
    Bytes sb = sa;
    EXPECT_EQ(a.corrupt_capture(ca, sa), b.corrupt_capture(cb, sb));
    ASSERT_EQ(ca, cb);
    ASSERT_EQ(sa, sb);
  }
  EXPECT_EQ(a.stats().applied, b.stats().applied);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(FaultConfig::uniform(0.8), 1);
  FaultInjector b(FaultConfig::uniform(0.8), 2);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes ca = sample_stream();
    Bytes sa = sample_stream();
    Bytes cb = ca;
    Bytes sb = sa;
    a.corrupt_capture(ca, sa);
    b.corrupt_capture(cb, sb);
    differing += (ca != cb || sa != sb);
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, FullRateAppliesEveryKindEventually) {
  // Saturate all three fault pools so every kind — capture, frame, and
  // segment-level group — shows up.
  auto config = FaultConfig::uniform(1.0);
  const auto frames = FaultConfig::frames_only(1.0);
  config.frame_truncate = frames.frame_truncate;
  config.frame_bit_flip = frames.frame_bit_flip;
  config.frame_duplicate = frames.frame_duplicate;
  const auto groups = FaultConfig::groups_only(1.0);
  config.group_torn_tail = groups.group_torn_tail;
  config.group_bit_flip = groups.group_bit_flip;
  config.segment_truncate = groups.segment_truncate;
  config.index_stale = groups.index_stale;
  FaultInjector inj(config, 7);
  for (int i = 0; i < 2000; ++i) {
    Bytes c = sample_stream();
    Bytes s = sample_stream();
    EXPECT_NE(inj.corrupt_capture(c, s), FaultKind::kNone);
    Bytes frame = sample_stream();
    EXPECT_NE(inj.corrupt_frame(frame), FaultKind::kNone);
    Bytes group = sample_stream();
    EXPECT_NE(inj.corrupt_group(group), FaultKind::kNone);
  }
  EXPECT_EQ(inj.stats().total_faults(), 6000u);
  EXPECT_EQ(inj.stats().captures_seen, 2000u);
  EXPECT_EQ(inj.stats().frames_seen, 2000u);
  EXPECT_EQ(inj.stats().groups_seen, 2000u);
  for (std::size_t k = 1; k < kFaultKindCount; ++k) {
    EXPECT_GT(inj.stats().applied[k], 0u)
        << fault_kind_name(static_cast<FaultKind>(k));
  }
}

TEST(FaultInjector, DropFlightClearsBothOneSidedClearsOne) {
  FaultConfig drop;
  drop.drop_flight = 1.0;
  FaultInjector d(drop, 3);
  Bytes c = sample_stream();
  Bytes s = sample_stream();
  EXPECT_EQ(d.corrupt_capture(c, s), FaultKind::kDropFlight);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(s.empty());

  FaultConfig side;
  side.one_sided = 1.0;
  FaultInjector o(side, 3);
  int client_lost = 0;
  int server_lost = 0;
  for (int i = 0; i < 100; ++i) {
    c = sample_stream();
    s = sample_stream();
    EXPECT_EQ(o.corrupt_capture(c, s), FaultKind::kOneSided);
    EXPECT_TRUE(c.empty() != s.empty());  // exactly one direction lost
    client_lost += c.empty();
    server_lost += s.empty();
  }
  EXPECT_GT(client_lost, 0);
  EXPECT_GT(server_lost, 0);
}

TEST(MutationPrimitives, RecordOffsetsWalkHeaders) {
  const Bytes stream = sample_stream(3, 20);
  const auto offsets = record_offsets(stream);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 25u);
  EXPECT_EQ(offsets[2], 50u);

  // A truncated final record is not reported as an offset.
  Bytes cut = stream;
  cut.resize(cut.size() - 1);
  EXPECT_EQ(record_offsets(cut).size(), 2u);
  EXPECT_TRUE(record_offsets({}).empty());
}

TEST(MutationPrimitives, SplitIsLegalFragmentation) {
  tls::core::Rng rng(9);
  Bytes stream = sample_stream(2, 30);
  const auto payload_before = stream.size() - 2 * 5;
  ASSERT_TRUE(split_record(stream, rng));
  const auto offsets = record_offsets(stream);
  EXPECT_EQ(offsets.size(), 3u);  // one record became two
  EXPECT_EQ(stream.size(), payload_before + 3 * 5);
  // Still a walkable, parseable record stream (fragmented handshake bodies
  // are tolerated by the lenient flight parser).
  EXPECT_FALSE(
      tls::wire::parse_flight_lenient(stream).stream_error.has_value());
}

TEST(MutationPrimitives, CoalesceMergesAdjacentSameType) {
  Bytes stream = sample_stream(2, 10);
  ASSERT_TRUE(coalesce_records(stream));
  const auto offsets = record_offsets(stream);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(stream.size(), 5u + 20u);  // one header, both fragments
  EXPECT_FALSE(
      tls::wire::parse_flight_lenient(stream).stream_error.has_value());

  // Nothing to merge: single record, or mismatched types.
  Bytes single = sample_stream(1);
  EXPECT_FALSE(coalesce_records(single));
  Bytes mixed = sample_stream(1, 10);
  {
    tls::wire::Record alert;
    alert.type = tls::wire::ContentType::kAlert;
    alert.fragment = {2, 40};
    const auto bytes = alert.serialize();
    mixed.insert(mixed.end(), bytes.begin(), bytes.end());
  }
  EXPECT_FALSE(coalesce_records(mixed));
}

TEST(MutationPrimitives, TruncateAndGarbage) {
  Bytes stream = sample_stream();
  truncate_at(stream, 7);
  EXPECT_EQ(stream.size(), 7u);
  truncate_at(stream, 100);  // beyond the end: no-op
  EXPECT_EQ(stream.size(), 7u);

  tls::core::Rng rng(5);
  const auto before = stream.size();
  append_garbage(stream, rng, 16);
  EXPECT_GT(stream.size(), before);
  EXPECT_LE(stream.size(), before + 16);
}

TEST(MutationPrimitives, LengthCorruptionHitsAHeader) {
  tls::core::Rng rng(11);
  Bytes stream = sample_stream(1, 20);
  const Bytes before = stream;
  corrupt_record_length(stream, rng);
  EXPECT_EQ(stream.size(), before.size());
  // Only the two length bytes of the single header may differ.
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i == 3 || i == 4) continue;
    EXPECT_EQ(stream[i], before[i]) << "byte " << i;
  }
  EXPECT_TRUE(stream[3] != before[3] || stream[4] != before[4]);
}

// ---- scan-side probe engine ----

TEST(Probe, IdealNetworkSucceedsFirstTry) {
  tls::core::Rng rng(1);
  const auto trace = run_probe(NetworkProfile{}, RetryPolicy{}, rng);
  EXPECT_TRUE(trace.reached);
  EXPECT_FALSE(trace.abandoned);
  ASSERT_EQ(trace.attempts.size(), 1u);
  EXPECT_EQ(trace.attempts[0], ProbeOutcome::kOk);
  EXPECT_EQ(trace.retries(), 0u);
  EXPECT_TRUE(trace.backoffs_ms.empty());
}

TEST(Probe, DeadHostExhaustsAttempts) {
  NetworkProfile p;
  p.unreachable = 1.0;
  RetryPolicy policy;
  policy.total_budget_ms = 0;  // no budget: attempts bound the probe
  tls::core::Rng rng(2);
  const auto trace = run_probe(p, policy, rng);
  EXPECT_FALSE(trace.reached);
  EXPECT_EQ(trace.attempts.size(), policy.max_attempts);
  EXPECT_EQ(trace.retries(), policy.max_attempts - 1);
  for (const auto a : trace.attempts) {
    EXPECT_EQ(a, ProbeOutcome::kUnreachable);
  }
}

TEST(Probe, DeterministicSchedule) {
  const auto p = NetworkProfile::lossy(0.8);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    tls::core::Rng r1(seed);
    tls::core::Rng r2(seed);
    const auto a = run_probe(p, RetryPolicy{}, r1);
    const auto b = run_probe(p, RetryPolicy{}, r2);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.backoffs_ms, b.backoffs_ms);
    EXPECT_EQ(a.reached, b.reached);
    EXPECT_EQ(a.abandoned, b.abandoned);
    EXPECT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms);
  }
}

TEST(Probe, BackoffGrowsExponentiallyWithinJitter) {
  NetworkProfile p;
  p.timeout = 1.0;  // every attempt times out
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.total_budget_ms = 0;
  tls::core::Rng rng(3);
  const auto trace = run_probe(p, policy, rng);
  ASSERT_EQ(trace.backoffs_ms.size(), 4u);
  double expected = policy.base_backoff_ms;
  for (const auto b : trace.backoffs_ms) {
    EXPECT_GE(b, expected * (1.0 - policy.jitter));
    EXPECT_LE(b, expected * (1.0 + policy.jitter));
    expected *= policy.backoff_factor;
  }
}

TEST(Probe, BudgetAbandonsEarly) {
  NetworkProfile p;
  p.timeout = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.attempt_timeout_ms = 1000;
  policy.total_budget_ms = 2500;  // room for ~2 attempts
  tls::core::Rng rng(4);
  const auto trace = run_probe(p, policy, rng);
  EXPECT_FALSE(trace.reached);
  EXPECT_TRUE(trace.abandoned);
  EXPECT_LT(trace.attempts.size(), 10u);
}

TEST(Probe, ZeroAttemptTimeoutNeverTripsTheBudget) {
  // attempt_timeout_ms == 0 is the degenerate "instant verdict" policy:
  // timeouts cost no clock, so even a 1 ms budget cannot abandon the probe
  // and every configured attempt runs. Guards against a divide/overflow or
  // an accidental `elapsed >= budget` trip at elapsed == 0.
  NetworkProfile p;
  p.timeout = 1.0;  // every attempt times out...
  RetryPolicy policy;
  policy.attempt_timeout_ms = 0;  // ...but a zero timeout costs nothing
  policy.base_backoff_ms = 0;     // and neither do the backoffs
  policy.max_attempts = 8;
  policy.total_budget_ms = 1;
  tls::core::Rng rng(11);
  const auto trace = run_probe(p, policy, rng);
  EXPECT_FALSE(trace.reached);
  EXPECT_FALSE(trace.abandoned);
  EXPECT_EQ(trace.attempts.size(), 8u);
  EXPECT_DOUBLE_EQ(trace.elapsed_ms, 0.0);
  for (const auto a : trace.attempts) {
    EXPECT_EQ(a, ProbeOutcome::kTimeout);
  }
}

TEST(Probe, BackoffSaturationExhaustsBudgetAndAbandons) {
  // The exponential backoff has no standalone cap — the total time budget
  // IS the cap. Attempts are nearly free here; the geometric backoff alone
  // must saturate the budget and flag abandonment with attempts left.
  NetworkProfile p;
  p.timeout = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.attempt_timeout_ms = 1;
  policy.base_backoff_ms = 1;
  policy.backoff_factor = 8.0;
  policy.jitter = 0;  // pure geometric series, exactly predictable
  policy.total_budget_ms = 1000;
  tls::core::Rng rng(12);
  const auto trace = run_probe(p, policy, rng);
  EXPECT_FALSE(trace.reached);
  EXPECT_TRUE(trace.abandoned);
  EXPECT_LT(trace.attempts.size(), policy.max_attempts);
  EXPECT_GE(trace.elapsed_ms, policy.total_budget_ms);
  double expected = policy.base_backoff_ms;
  for (const auto b : trace.backoffs_ms) {
    EXPECT_DOUBLE_EQ(b, expected);
    expected *= policy.backoff_factor;
  }
}

TEST(Probe, FullyFlakyHostsFailEveryAttemptButAreNotDead) {
  // flaky_hosts = 1.0 makes every live host flaky; with the x10 penalty a
  // 0.2 timeout rate saturates to certainty. The host is NOT unreachable —
  // each attempt individually times out, which is a different books entry.
  NetworkProfile p;
  p.flaky_hosts = 1.0;
  p.timeout = 0.2;
  RetryPolicy policy;
  policy.total_budget_ms = 0;
  tls::core::Rng rng(13);
  const auto trace = run_probe(p, policy, rng);
  EXPECT_FALSE(trace.reached);
  EXPECT_EQ(trace.attempts.size(), policy.max_attempts);
  for (const auto a : trace.attempts) {
    EXPECT_EQ(a, ProbeOutcome::kTimeout);
  }
}

TEST(ScanClosure, FullyFlakyNetworkKeepsScannedPlusUnreachableExact) {
  // Coverage accounting must close exactly even at total loss: every
  // host's weight lands in either `scanned` or `unreachable`, and the
  // support fractions (normalized over reached hosts) stay finite zeros
  // rather than NaNs when nothing was reached.
  const auto pop = tls::servers::ServerPopulation::standard();
  tls::scan::ScanPolicy policy;
  policy.network.flaky_hosts = 1.0;
  policy.network.timeout = 0.1;  // x10 flaky penalty => certain timeout
  const tls::scan::ActiveScanner scanner(pop, policy);
  const auto s = scanner.scan(tls::core::Month(2016, 1));
  EXPECT_NEAR(s.scanned + s.unreachable, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.scanned, 0.0);
  EXPECT_GT(s.probe_attempts, 0u);
  EXPECT_GT(s.probe_retries, 0u);
  for (const double f :
       {s.ssl3_support, s.export_support, s.chooses_rc4, s.chooses_cbc,
        s.chooses_aead, s.chooses_3des, s.rc4_support, s.rc4_only,
        s.heartbeat_support, s.heartbleed_vulnerable, s.tls13_support}) {
    EXPECT_DOUBLE_EQ(f, 0.0);
  }

  // A half-flaky sweep still closes, with both sides of the ledger live.
  tls::scan::ScanPolicy mixed;
  mixed.network.flaky_hosts = 0.5;
  mixed.network.timeout = 0.1;
  mixed.network.unreachable = 0.2;
  const tls::scan::ActiveScanner mixed_scanner(pop, mixed);
  const auto ms = mixed_scanner.scan(tls::core::Month(2016, 1));
  EXPECT_NEAR(ms.scanned + ms.unreachable, 1.0, 1e-9);
  EXPECT_GT(ms.scanned, 0.0);
  EXPECT_GT(ms.unreachable, 0.0);
}

TEST(Probe, LossyProfileScalesWithLevel) {
  const auto mild = NetworkProfile::lossy(0.1);
  const auto harsh = NetworkProfile::lossy(1.0);
  EXPECT_LT(mild.unreachable, harsh.unreachable);
  EXPECT_FALSE(mild.ideal());
  EXPECT_TRUE(NetworkProfile{}.ideal());
  EXPECT_TRUE(NetworkProfile::lossy(0).ideal());
}

TEST(Names, AllDistinct) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    EXPECT_NE(fault_kind_name(static_cast<FaultKind>(i)), "?");
  }
  EXPECT_EQ(probe_outcome_name(ProbeOutcome::kOk), "ok");
  EXPECT_EQ(probe_outcome_name(ProbeOutcome::kReset), "reset");
}

TEST(FaultConfig, FramePoolIsSeparateFromCapturePool) {
  // frame_* rates feed only corrupt_frame(); total()/uniform() govern only
  // the capture path. Keeping the pools disjoint is what lets checkpoint
  // chaos ride along without perturbing existing capture-fault baselines.
  const auto frames = FaultConfig::frames_only(0.6);
  EXPECT_DOUBLE_EQ(frames.frame_truncate, 0.2);
  EXPECT_DOUBLE_EQ(frames.frame_bit_flip, 0.2);
  EXPECT_DOUBLE_EQ(frames.frame_duplicate, 0.2);
  EXPECT_DOUBLE_EQ(frames.frame_total(), 0.6);
  EXPECT_DOUBLE_EQ(frames.total(), 0.0);  // capture pool untouched

  const auto captures = FaultConfig::uniform(0.5);
  EXPECT_GT(captures.total(), 0.0);
  EXPECT_DOUBLE_EQ(captures.frame_total(), 0.0);  // frame pool untouched
}

TEST(FaultInjector, RollThenApplyEqualsCorruptCapture) {
  // corrupt_capture() must be exactly roll_capture() + apply_capture():
  // same RNG stream consumption, same mutations, same stats. The monitor's
  // roll-first observe path depends on this equivalence.
  const auto config = FaultConfig::uniform(0.35);
  FaultInjector combined(config, 1234);
  FaultInjector split(config, 1234);
  std::vector<std::uint8_t> base_client(96), base_server(64);
  for (std::size_t i = 0; i < base_client.size(); ++i) {
    base_client[i] = static_cast<std::uint8_t>(i * 7);
  }
  for (std::size_t i = 0; i < base_server.size(); ++i) {
    base_server[i] = static_cast<std::uint8_t>(i * 13);
  }
  for (int i = 0; i < 500; ++i) {
    auto c1 = base_client, s1 = base_server;
    auto c2 = base_client, s2 = base_server;
    const auto kind = combined.corrupt_capture(c1, s1);
    const auto kind2 = split.roll_capture();
    split.apply_capture(kind2, c2, s2);
    EXPECT_EQ(kind, kind2);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(s1, s2);
  }
  EXPECT_EQ(combined.stats().captures_seen, split.stats().captures_seen);
  EXPECT_EQ(combined.stats().total_faults(), split.stats().total_faults());
}

TEST(FaultInjector, FrameFaultsMutateOrDuplicate) {
  FaultInjector injector(FaultConfig::frames_only(1.0), 99);
  const std::vector<std::uint8_t> base(128, 0x5a);
  std::size_t truncated = 0, flipped = 0, duplicated = 0;
  for (int i = 0; i < 600; ++i) {
    auto frame = base;
    switch (injector.corrupt_frame(frame)) {
      case FaultKind::kFrameTruncate:
        ++truncated;
        EXPECT_LT(frame.size(), base.size());
        break;
      case FaultKind::kFrameBitFlip:
        ++flipped;
        EXPECT_EQ(frame.size(), base.size());
        EXPECT_NE(frame, base);
        break;
      case FaultKind::kFrameDuplicate:
        ++duplicated;
        EXPECT_EQ(frame, base);  // caller writes the extra copy
        break;
      default:
        FAIL() << "rate 1.0 must always pick a frame fault";
    }
  }
  // All three kinds occur, and every event was counted.
  EXPECT_GT(truncated, 0u);
  EXPECT_GT(flipped, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_EQ(injector.stats().frames_seen, 600u);
  EXPECT_EQ(injector.stats().total_faults(), 600u);
}

TEST(FaultInjector, ZeroFrameRateIsIdentity) {
  FaultInjector injector(FaultConfig{}, 7);
  const std::vector<std::uint8_t> base(64, 0x11);
  for (int i = 0; i < 100; ++i) {
    auto frame = base;
    EXPECT_EQ(injector.corrupt_frame(frame), FaultKind::kNone);
    EXPECT_EQ(frame, base);
  }
  EXPECT_EQ(injector.stats().total_faults(), 0u);
}

}  // namespace
}  // namespace tls::faults
