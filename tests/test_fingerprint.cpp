#include <gtest/gtest.h>

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "fingerprint/fingerprint.hpp"
#include "fingerprint/md5.hpp"
#include "fingerprint/md5_multilane.hpp"
#include "tlscore/grease.hpp"

namespace tls::fp {
namespace {

tls::wire::ClientHello base_hello() {
  tls::wire::ClientHello ch;
  ch.legacy_version = 0x0303;
  ch.cipher_suites = {0xc02f, 0x009c, 0x0035};
  ch.extensions.push_back(tls::wire::make_server_name("fp.test"));
  const std::uint16_t groups[] = {29, 23};
  ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  const std::uint8_t formats[] = {0};
  ch.extensions.push_back(tls::wire::make_ec_point_formats(formats));
  return ch;
}

TEST(Fingerprint, CanonicalFormat) {
  const auto fp = extract_fingerprint(base_hello());
  EXPECT_EQ(fp.canonical(), "49199-156-53,0-10-11,29-23,0");
}

TEST(Fingerprint, HashIsMd5OfCanonical) {
  const auto fp = extract_fingerprint(base_hello());
  EXPECT_EQ(fp.hash(), Md5::hex(fp.canonical()));
  EXPECT_EQ(fp.hash().size(), 32u);
}

// RFC 1321 §3.1-3.2 padding audit, pinned to digests computed with an
// independent MD5 implementation (GNU coreutils md5sum). 55/56/57 bytes
// straddle the is-there-room-for-the-length boundary (len % 64 == 56 forces
// a second padding block); 63/64/65 straddle the block boundary itself; the
// 200-byte and repeated-"abc" cases cover multi-block compression. These
// are the differential oracle for the multi-lane SIMD kernels: md5_batch
// must reproduce every one of them bit-exactly in any lane position.
TEST(Fingerprint, Md5PaddingBoundariesMatchIndependentOracle) {
  const auto hex_of_xs = [](std::size_t n) {
    return Md5::hex(std::string(n, 'x'));
  };
  EXPECT_EQ(hex_of_xs(55), "04364420e25c512fd958a70738aa8f72");
  EXPECT_EQ(hex_of_xs(56), "668a72d5ba17f08e62dabcafad6db14b");
  EXPECT_EQ(hex_of_xs(57), "693037871c4a9d3d8685018905cb530a");
  EXPECT_EQ(hex_of_xs(63), "7dc2ca208106a2f703567bdff99d8981");
  EXPECT_EQ(hex_of_xs(64), "c1bb4f81d892b2d57947682aeb252456");
  EXPECT_EQ(hex_of_xs(65), "1bc932052302d074bdec39795fe00cf6");
  EXPECT_EQ(hex_of_xs(200), "30a83621ce5422fbdfdd539777458c78");
  std::string abc;
  for (int i = 0; i < 100; ++i) abc += "abc";
  EXPECT_EQ(Md5::hex(abc), "f571117acbd8153c8dc3c81b8817773a");
}

// The same oracle digests through the batch entry point, one call covering
// every padding class at once — lanes must not leak state across messages.
TEST(Fingerprint, Md5BatchReproducesOracleDigests) {
  const std::array<std::size_t, 7> lens = {55, 56, 57, 63, 64, 65, 200};
  const std::array<const char*, 7> want = {
      "04364420e25c512fd958a70738aa8f72", "668a72d5ba17f08e62dabcafad6db14b",
      "693037871c4a9d3d8685018905cb530a", "7dc2ca208106a2f703567bdff99d8981",
      "c1bb4f81d892b2d57947682aeb252456", "1bc932052302d074bdec39795fe00cf6",
      "30a83621ce5422fbdfdd539777458c78"};
  std::vector<std::string> msgs;
  std::vector<std::string_view> views;
  for (const auto n : lens) msgs.emplace_back(n, 'x');
  for (const auto& m : msgs) views.emplace_back(m);
  std::vector<std::array<std::uint8_t, 16>> digests(views.size());
  md5_batch(views, digests);
  for (std::size_t i = 0; i < lens.size(); ++i) {
    EXPECT_EQ(to_hex(digests[i]), want[i]) << "len=" << lens[i];
  }
}

TEST(Fingerprint, FieldOrderPreserved) {
  auto hello = base_hello();
  std::swap(hello.cipher_suites[0], hello.cipher_suites[2]);
  const auto a = extract_fingerprint(base_hello());
  const auto b = extract_fingerprint(hello);
  EXPECT_NE(a.hash(), b.hash());  // order matters, per §4
}

TEST(Fingerprint, SniContentDoesNotMatter) {
  auto hello = base_hello();
  hello.extensions[0] = tls::wire::make_server_name("other.example");
  EXPECT_EQ(extract_fingerprint(base_hello()).hash(),
            extract_fingerprint(hello).hash());
}

TEST(Fingerprint, RandomAndSessionIdDoNotMatter) {
  auto hello = base_hello();
  hello.random.fill(0x77);
  hello.session_id = {9, 9, 9};
  EXPECT_EQ(extract_fingerprint(base_hello()).hash(),
            extract_fingerprint(hello).hash());
}

// GREASE property: injecting any GREASE value at any position in any of the
// GREASEable fields never changes the fingerprint (§4).
class GreaseInvariance : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(GreaseInvariance, CipherPosition) {
  const auto baseline = extract_fingerprint(base_hello()).hash();
  for (std::size_t pos = 0; pos <= 3; ++pos) {
    auto hello = base_hello();
    hello.cipher_suites.insert(
        hello.cipher_suites.begin() + static_cast<std::ptrdiff_t>(pos),
        GetParam());
    EXPECT_EQ(extract_fingerprint(hello).hash(), baseline) << pos;
  }
}

TEST_P(GreaseInvariance, ExtensionAndGroup) {
  const auto baseline = extract_fingerprint(base_hello()).hash();
  auto hello = base_hello();
  hello.extensions.insert(hello.extensions.begin(),
                          tls::wire::make_grease_extension(GetParam()));
  hello.extensions.push_back(tls::wire::make_grease_extension(GetParam()));
  // Rebuild supported_groups with a GREASE group in front.
  const std::uint16_t groups[] = {GetParam(), 29, 23};
  hello.extensions[2] = tls::wire::make_supported_groups(groups);
  EXPECT_EQ(extract_fingerprint(hello).hash(), baseline);
}

INSTANTIATE_TEST_SUITE_P(AllGreaseValues, GreaseInvariance,
                         ::testing::ValuesIn(tls::core::grease_values()));

TEST(Fingerprint, MissingGroupsAndFormatsYieldEmptyFields) {
  tls::wire::ClientHello ch;
  ch.cipher_suites = {0x0005};
  const auto fp = extract_fingerprint(ch);
  EXPECT_TRUE(fp.groups.empty());
  EXPECT_TRUE(fp.ec_point_formats.empty());
  EXPECT_EQ(fp.canonical(), "5,,,");
}

TEST(Fingerprint, OffersUsesRegistry) {
  const auto fp = extract_fingerprint(base_hello());
  EXPECT_TRUE(fp.offers(
      [](const tls::core::CipherSuiteInfo& s) { return tls::core::is_aead(s); }));
  EXPECT_FALSE(fp.offers(
      [](const tls::core::CipherSuiteInfo& s) { return tls::core::is_rc4(s); }));
}

TEST(Ja3, IncludesVersionPrefix) {
  const auto s = ja3_string(base_hello());
  EXPECT_EQ(s.rfind("771,", 0), 0u);  // 0x0303 == 771
  EXPECT_EQ(ja3_hash(base_hello()), Md5::hex(s));
}

TEST(Ja3, VersionChangesHash) {
  auto hello = base_hello();
  hello.legacy_version = 0x0301;
  EXPECT_NE(ja3_hash(hello), ja3_hash(base_hello()));
  // ...but the paper's fingerprint (no version field) is unchanged.
  EXPECT_EQ(extract_fingerprint(hello).hash(),
            extract_fingerprint(base_hello()).hash());
}

}  // namespace
}  // namespace tls::fp
