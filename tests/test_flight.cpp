// Flight-recorder invariants (DESIGN.md §17): exact drop-oldest
// accounting across wraparound, tear-free concurrent snapshots, lossless
// serialize/decode round-trips, checksum tamper detection that degrades
// to a rendered warning rather than a refusal, and the async-signal-safe
// crash-dump path producing a decodable artifact from a real signal death.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight.hpp"

namespace {

using tls::telemetry::decode_flight;
using tls::telemetry::FlightEventKind;
using tls::telemetry::FlightRecorder;
using tls::telemetry::FlightRing;
using tls::telemetry::render_flight;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string temp_path(const char* stem) {
  return (std::filesystem::temp_directory_path() /
          (std::string(stem) + "." + std::to_string(::getpid()) + ".bin"))
      .string();
}

}  // namespace

TEST(FlightRing, DropOldestAccountingIsExactAcrossWraparound) {
  FlightRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot(0).empty());

  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record(FlightEventKind::kIngest, static_cast<std::uint32_t>(i),
                i * 1000, /*ts_us=*/i + 1);
  }
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  const auto events = ring.snapshot(/*lane=*/3);
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t seq = 12 + i;  // oldest resident first
    EXPECT_EQ(events[i].seq, seq);
    EXPECT_EQ(events[i].ts_us, seq + 1);
    EXPECT_EQ(events[i].a, seq);
    EXPECT_EQ(events[i].b, seq * 1000);
    EXPECT_EQ(events[i].lane, 3u);
    EXPECT_EQ(events[i].kind,
              static_cast<std::uint8_t>(FlightEventKind::kIngest));
  }
}

TEST(FlightRing, TinyCapacityIsClampedAndUsable) {
  FlightRing ring(0);  // ctor clamps to a minimum of 2
  EXPECT_GE(ring.capacity(), 2u);
  ring.record(FlightEventKind::kShed, 1, 2, 3);
  const auto events = ring.snapshot(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].b, 2u);
}

// A concurrent reader must never observe a torn event: every snapshotted
// event's fields must satisfy the writer's invariant (a, b, ts all derived
// from seq), and seq ranges must stay consistent with drop accounting.
TEST(FlightRing, ConcurrentSnapshotNeverTears) {
  FlightRing ring(64);
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kWrites = 200'000;

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      ring.record(FlightEventKind::kAdmit,
                  static_cast<std::uint32_t>(i & 0xffffffffu), i * 7, i + 1);
    }
    stop.store(true, std::memory_order_release);
  });

  std::uint64_t snapshots = 0;
  std::uint64_t last_max_seq = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const auto events = ring.snapshot(0);
    ++snapshots;
    for (const auto& e : events) {
      // seq IS the write index, so every word must match it exactly.
      ASSERT_EQ(e.a, static_cast<std::uint32_t>(e.seq & 0xffffffffu));
      ASSERT_EQ(e.b, e.seq * 7);
      ASSERT_EQ(e.ts_us, e.seq + 1);
    }
    if (!events.empty()) {
      // Oldest-first ordering and monotonic progress between snapshots.
      for (std::size_t i = 1; i < events.size(); ++i) {
        ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
      }
      ASSERT_GE(events.back().seq + 1, last_max_seq);
      last_max_seq = events.back().seq + 1;
    }
  }
  writer.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(ring.total(), kWrites);
  EXPECT_EQ(ring.dropped(), kWrites - 64);
  // A quiescent snapshot is complete.
  EXPECT_EQ(ring.snapshot(0).size(), 64u);
}

TEST(FlightRecorder, SerializeDecodeRoundTripIsLossless) {
  FlightRecorder recorder(/*lanes=*/3, /*events_per_lane=*/16);
  ASSERT_EQ(recorder.lanes(), 3u);
  recorder.lane(0).record(FlightEventKind::kConnAccept, 11, 0, 100);
  recorder.lane(0).record(FlightEventKind::kDrainStart, 0, 0, 900);
  recorder.lane(1).record(FlightEventKind::kIngest, 0, 42, 200);
  // Lane 2 wraps: only the newest 16 survive, drop accounting carries over.
  for (std::uint64_t i = 0; i < 40; ++i) {
    recorder.lane(2).record(FlightEventKind::kShed, 7,
                            i, 300 + i);
  }

  const auto image = recorder.serialize();
  const auto dump = decode_flight({image.data(), image.size()});
  ASSERT_TRUE(dump.ok);
  EXPECT_TRUE(dump.checksum_ok);
  EXPECT_EQ(dump.version, tls::telemetry::kFlightVersion);
  EXPECT_EQ(dump.crash_signo, 0u);
  EXPECT_EQ(dump.ring_capacity, 16u);
  ASSERT_EQ(dump.totals.size(), 3u);
  EXPECT_EQ(dump.totals[0], 2u);
  EXPECT_EQ(dump.totals[1], 1u);
  EXPECT_EQ(dump.totals[2], 40u);
  EXPECT_EQ(dump.dropped[2], 24u);
  EXPECT_EQ(dump.events.size(), 2u + 1u + 16u);
  // Merged timeline is oldest-first by timestamp.
  for (std::size_t i = 1; i < dump.events.size(); ++i) {
    EXPECT_LE(dump.events[i - 1].ts_us, dump.events[i].ts_us);
  }
  // Lane 2's resident window is exactly the newest 16 (seq 24..39).
  std::uint64_t lane2_seen = 0;
  for (const auto& e : dump.events) {
    if (e.lane != 2) continue;
    EXPECT_GE(e.seq, 24u);
    EXPECT_EQ(e.b, e.seq);
    ++lane2_seen;
  }
  EXPECT_EQ(lane2_seen, 16u);

  const auto text = render_flight({image.data(), image.size()});
  EXPECT_NE(text.find("checksum=ok"), std::string::npos) << text;
  EXPECT_NE(text.find("conn_accept"), std::string::npos) << text;
  EXPECT_NE(text.find("drain_start"), std::string::npos) << text;
}

TEST(FlightRecorder, ChecksumTamperIsDetectedButStillRenders) {
  FlightRecorder recorder(1, 8);
  recorder.lane(0).record(FlightEventKind::kCheckpointEpoch, 5, 1234, 77);
  auto image = recorder.serialize();
  ASSERT_GT(image.size(), tls::telemetry::kFlightHeaderBytes);
  image[tls::telemetry::kFlightHeaderBytes + 3] ^= 0x40;  // mutate ring data

  const auto dump = decode_flight({image.data(), image.size()});
  EXPECT_TRUE(dump.ok);  // structure still parses
  EXPECT_FALSE(dump.checksum_ok);
  const auto text = render_flight({image.data(), image.size()});
  EXPECT_NE(text.find("MISMATCH"), std::string::npos) << text;
}

TEST(FlightRecorder, DecoderRejectsGarbageWithoutThrowing) {
  EXPECT_FALSE(decode_flight({}).ok);
  const std::vector<std::uint8_t> small{1, 2, 3};
  EXPECT_FALSE(decode_flight({small.data(), small.size()}).ok);

  FlightRecorder recorder(1, 4);
  recorder.lane(0).record(FlightEventKind::kAdmit, 1, 2, 3);
  const auto image = recorder.serialize();
  // Every strict truncation fails cleanly (the format is exact-size) and
  // renders without throwing.
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_FALSE(decode_flight({image.data(), cut}).ok) << "cut=" << cut;
    (void)render_flight({image.data(), cut});  // must not throw either
  }
}

TEST(FlightRecorder, WriteFileRoundTrips) {
  const auto path = temp_path("tls_flight_write");
  FlightRecorder recorder(2, 8);
  recorder.lane(0).record(FlightEventKind::kConnAccept, 9, 0, 10);
  recorder.lane(1).record(FlightEventKind::kIngest, 0, 55, 20);
  ASSERT_TRUE(recorder.write_file(path));
  const auto bytes = read_file(path);
  const auto dump = decode_flight({bytes.data(), bytes.size()});
  EXPECT_TRUE(dump.ok);
  EXPECT_TRUE(dump.checksum_ok);
  EXPECT_EQ(dump.events.size(), 2u);
  std::filesystem::remove(path);
}

// The real crash path: fork a child, install the handler, die on SIGSEGV
// (via raise — deterministic), then decode what the handler wrote. The
// child must die BY THE SIGNAL (handler re-raises with default
// disposition), and the dump must carry the signal number and the events
// recorded before the crash.
TEST(FlightCrashHandler, SignalDeathLeavesDecodableDump) {
  const auto path = temp_path("tls_flight_crash");
  std::filesystem::remove(path);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest infrastructure from here on.
    static FlightRecorder recorder(2, 32);
    recorder.lane(0).record(FlightEventKind::kConnAccept, 1, 0, 100);
    recorder.lane(1).record(FlightEventKind::kIngest, 0, 9, 200);
    recorder.lane(1).record(FlightEventKind::kShed, 2, 3, 300);
    tls::telemetry::install_flight_crash_handler(&recorder, path);
    ::raise(SIGSEGV);
    ::_exit(0);  // unreachable if the handler re-raises correctly
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying: "
                                   << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const auto bytes = read_file(path);
  ASSERT_FALSE(bytes.empty()) << "crash handler wrote nothing";
  const auto dump = decode_flight({bytes.data(), bytes.size()});
  ASSERT_TRUE(dump.ok);
  EXPECT_TRUE(dump.checksum_ok);
  EXPECT_EQ(dump.crash_signo, static_cast<std::uint32_t>(SIGSEGV));
  ASSERT_EQ(dump.totals.size(), 2u);
  EXPECT_EQ(dump.totals[0], 1u);
  EXPECT_EQ(dump.totals[1], 2u);
  EXPECT_EQ(dump.events.size(), 3u);

  const auto text = render_flight({bytes.data(), bytes.size()});
  EXPECT_NE(text.find("crash"), std::string::npos) << text;
  std::filesystem::remove(path);
}

TEST(FlightRender, KindNamesNeverReturnNull) {
  for (unsigned k = 0; k < 256; ++k) {
    const char* name = tls::telemetry::flight_event_kind_name(
        static_cast<std::uint8_t>(k));
    ASSERT_NE(name, nullptr) << "kind " << k;
    ASSERT_NE(name[0], '\0') << "kind " << k;
  }
}
