#include <gtest/gtest.h>

#include <tuple>

#include "fingerprint/database.hpp"
#include "fingerprint/duration.hpp"

namespace tls::fp {
namespace {

using Outcome = FingerprintDatabase::AddOutcome;

SoftwareLabel label(const char* name, SoftwareClass cls, const char* v = "1") {
  return SoftwareLabel{name, cls, v, v};
}

TEST(Database, AddAndLookup) {
  FingerprintDatabase db;
  EXPECT_EQ(db.add("h1", label("Chrome", SoftwareClass::kBrowser)),
            Outcome::kAdded);
  const auto* l = db.lookup("h1");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->software, "Chrome");
  EXPECT_EQ(db.lookup("h2"), nullptr);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Database, SameSoftwareExtendsVersionRange) {
  FingerprintDatabase db;
  db.add("h1", label("Chrome", SoftwareClass::kBrowser, "33"));
  EXPECT_EQ(db.add("h1", label("Chrome", SoftwareClass::kBrowser, "39")),
            Outcome::kVersionExtended);
  const auto* l = db.lookup("h1");
  EXPECT_EQ(l->version_min, "33");
  EXPECT_EQ(l->version_max, "39");
  EXPECT_EQ(db.size(), 1u);
}

TEST(Database, AppThenLibraryResolvesToLibrary) {
  // §4: "when a collision between a specific software and a library occurs
  // we assume that the software uses the library."
  FingerprintDatabase db;
  db.add("h1", label("Chrome on Android", SoftwareClass::kBrowser));
  EXPECT_EQ(db.add("h1", label("Android SDK", SoftwareClass::kLibrary)),
            Outcome::kResolvedLibrary);
  EXPECT_EQ(db.lookup("h1")->software, "Android SDK");
}

TEST(Database, LibraryThenAppKeepsLibrary) {
  FingerprintDatabase db;
  db.add("h1", label("OpenSSL", SoftwareClass::kLibrary));
  EXPECT_EQ(db.add("h1", label("curl", SoftwareClass::kDevTool)),
            Outcome::kResolvedLibrary);
  EXPECT_EQ(db.lookup("h1")->software, "OpenSSL");
}

TEST(Database, CrossSoftwareCollisionRemovesPermanently) {
  // §4: "when a collision with a different kind of software occurs we
  // remove the fingerprint; it cannot uniquely identify a client."
  FingerprintDatabase db;
  db.add("h1", label("Chrome", SoftwareClass::kBrowser));
  EXPECT_EQ(db.add("h1", label("Firefox", SoftwareClass::kBrowser)),
            Outcome::kRemoved);
  EXPECT_EQ(db.lookup("h1"), nullptr);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.removed_count(), 1u);
  // Even re-adding the original label fails: the hash is burned.
  EXPECT_EQ(db.add("h1", label("Chrome", SoftwareClass::kBrowser)),
            Outcome::kAlreadyRemoved);
  EXPECT_EQ(db.lookup("h1"), nullptr);
}

TEST(Database, TwoLibrariesCollidingAreRemoved) {
  FingerprintDatabase db;
  db.add("h1", label("OpenSSL", SoftwareClass::kLibrary));
  EXPECT_EQ(db.add("h1", label("NSS", SoftwareClass::kLibrary)),
            Outcome::kRemoved);
  EXPECT_EQ(db.lookup("h1"), nullptr);
}

TEST(Database, CountByClass) {
  FingerprintDatabase db;
  db.add("h1", label("Chrome", SoftwareClass::kBrowser));
  db.add("h2", label("Firefox", SoftwareClass::kBrowser));
  db.add("h3", label("OpenSSL", SoftwareClass::kLibrary));
  const auto counts = db.count_by_class();
  EXPECT_EQ(counts.at(SoftwareClass::kBrowser), 2u);
  EXPECT_EQ(counts.at(SoftwareClass::kLibrary), 1u);
}

TEST(Database, ClassNames) {
  EXPECT_EQ(software_class_name(SoftwareClass::kMalware), "Malware & PUP");
  EXPECT_EQ(software_class_name(SoftwareClass::kBrowser), "Browsers");
}

using tls::core::Date;

TEST(DurationTracker, SingleDayLifetime) {
  DurationTracker t;
  t.record("h1", Date(2015, 3, 10), 5);
  const auto s = t.summarize();
  EXPECT_EQ(s.fingerprint_count, 1u);
  EXPECT_EQ(s.single_day_count, 1u);
  EXPECT_EQ(s.single_day_connections, 5u);
  EXPECT_DOUBLE_EQ(s.median_days, 1.0);
  EXPECT_EQ(s.max_days, 1);
}

TEST(DurationTracker, SpanAcrossDays) {
  DurationTracker t;
  t.record("h1", Date(2015, 3, 10));
  t.record("h1", Date(2015, 3, 20));
  t.record("h1", Date(2015, 3, 15));  // middle observation doesn't extend
  const auto& lt = t.lifetimes().at("h1");
  EXPECT_EQ(lt.duration_days(), 11);
  EXPECT_EQ(lt.connections, 3u);
}

TEST(DurationTracker, SummaryStatistics) {
  DurationTracker t;
  // Lifetimes: 1, 1, 1, 11, 101 days.
  t.record("a", Date(2015, 1, 1));
  t.record("b", Date(2015, 1, 1));
  t.record("c", Date(2015, 1, 1));
  t.record("d", Date(2015, 1, 1));
  t.record("d", Date(2015, 1, 11));
  t.record("e", Date(2015, 1, 1), 10);
  t.record("e", Date(2015, 4, 11), 10);
  const auto s = t.summarize(/*long_lived_threshold=*/50);
  EXPECT_EQ(s.fingerprint_count, 5u);
  EXPECT_DOUBLE_EQ(s.median_days, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_days, (1 + 1 + 1 + 11 + 101) / 5.0);
  EXPECT_EQ(s.max_days, 101);
  EXPECT_EQ(s.single_day_count, 3u);
  EXPECT_EQ(s.long_lived_count, 1u);
  EXPECT_EQ(s.long_lived_connections, 20u);
  EXPECT_EQ(s.total_connections, 25u);
  EXPECT_NEAR(s.long_lived_connection_share, 20.0 / 25.0, 1e-12);
}

TEST(DurationTracker, EmptySummary) {
  DurationTracker t;
  const auto s = t.summarize();
  EXPECT_EQ(s.fingerprint_count, 0u);
  EXPECT_EQ(s.total_connections, 0u);
}

TEST(DurationTracker, QuantileInterpolation) {
  DurationTracker t;
  // Lifetimes 1..4 -> Q3 = 3.25.
  t.record("a", Date(2015, 1, 1));
  t.record("b", Date(2015, 1, 1));
  t.record("b", Date(2015, 1, 2));
  t.record("c", Date(2015, 1, 1));
  t.record("c", Date(2015, 1, 3));
  t.record("d", Date(2015, 1, 1));
  t.record("d", Date(2015, 1, 4));
  const auto s = t.summarize();
  EXPECT_DOUBLE_EQ(s.q3_days, 3.25);
  EXPECT_DOUBLE_EQ(s.median_days, 2.5);
}

// §4.1 boundary semantics, pinned explicitly: "single day" means first and
// last observation fall on the same calendar day (duration_days() == 1) —
// not "short-lived". A fingerprint seen on two consecutive days spans two
// days and must NOT count as single-day.
TEST(DurationTracker, SameDayRepeatsStaySingleDay) {
  DurationTracker t;
  t.record("h1", Date(2015, 6, 1), 2);
  t.record("h1", Date(2015, 6, 1), 3);  // more traffic, same day
  const auto& lt = t.lifetimes().at("h1");
  EXPECT_EQ(lt.duration_days(), 1);
  EXPECT_EQ(lt.connections, 5u);
  const auto s = t.summarize();
  EXPECT_EQ(s.single_day_count, 1u);
  EXPECT_EQ(s.single_day_connections, 5u);
}

TEST(DurationTracker, ConsecutiveDaysAreNotSingleDay) {
  DurationTracker t;
  t.record("h1", Date(2015, 6, 1));
  t.record("h1", Date(2015, 6, 2));
  EXPECT_EQ(t.lifetimes().at("h1").duration_days(), 2);
  const auto s = t.summarize();
  EXPECT_EQ(s.single_day_count, 0u);
  EXPECT_EQ(s.single_day_connections, 0u);
}

TEST(DurationTracker, SingleSampleQuantilesAreExact) {
  // size() == 1: every quantile is the lone duration, no interpolation.
  DurationTracker t;
  t.record("h1", Date(2015, 6, 1));
  t.record("h1", Date(2015, 6, 7));  // 7-day lifetime
  const auto s = t.summarize();
  EXPECT_EQ(s.fingerprint_count, 1u);
  EXPECT_DOUBLE_EQ(s.median_days, 7.0);
  EXPECT_DOUBLE_EQ(s.q3_days, 7.0);
  EXPECT_DOUBLE_EQ(s.mean_days, 7.0);
  EXPECT_EQ(s.max_days, 7);
}

TEST(DurationTracker, MergeMatchesInterleavedObservation) {
  // Shard merge must equal the tracker that saw the union of events.
  DurationTracker whole, left, right;
  const auto events = {
      std::tuple{"x", Date(2015, 1, 5), std::uint64_t{2}},
      std::tuple{"x", Date(2015, 2, 1), std::uint64_t{1}},
      std::tuple{"y", Date(2015, 1, 9), std::uint64_t{4}},
      std::tuple{"x", Date(2014, 12, 30), std::uint64_t{3}},
      std::tuple{"z", Date(2015, 3, 3), std::uint64_t{1}},
  };
  std::size_t i = 0;
  for (const auto& [hash, day, n] : events) {
    whole.record(hash, day, n);
    (i++ % 2 == 0 ? left : right).record(hash, day, n);
  }
  left.merge(right);
  ASSERT_EQ(left.size(), whole.size());
  for (const auto& [hash, lt] : whole.lifetimes()) {
    const auto& merged = left.lifetimes().at(hash);
    EXPECT_EQ(merged.first_day, lt.first_day) << hash;
    EXPECT_EQ(merged.last_day, lt.last_day) << hash;
    EXPECT_EQ(merged.connections, lt.connections) << hash;
  }
}

}  // namespace
}  // namespace tls::fp
