#include <gtest/gtest.h>

#include <sstream>

#include "clients/catalog.hpp"
#include "core/study.hpp"
#include "fingerprint/io.hpp"

namespace tls::fp {
namespace {

FingerprintDatabase sample_db() {
  FingerprintDatabase db;
  db.add("00ff00ff00ff00ff00ff00ff00ff00ff",
         SoftwareLabel{"Chrome", SoftwareClass::kBrowser, "29", "39"});
  db.add("0123456789abcdef0123456789abcdef",
         SoftwareLabel{"OpenSSL", SoftwareClass::kLibrary, "1.0.1", "1.0.2"});
  db.add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
         SoftwareLabel{"Zbot", SoftwareClass::kMalware, "2", "2"});
  return db;
}

TEST(FingerprintIo, SaveLoadRoundTrip) {
  const auto db = sample_db();
  std::stringstream stream;
  save_database(stream, db);
  const auto loaded = load_database(stream);
  EXPECT_EQ(loaded.size(), db.size());
  const auto* chrome = loaded.lookup("00ff00ff00ff00ff00ff00ff00ff00ff");
  ASSERT_NE(chrome, nullptr);
  EXPECT_EQ(chrome->software, "Chrome");
  EXPECT_EQ(chrome->cls, SoftwareClass::kBrowser);
  EXPECT_EQ(chrome->version_min, "29");
  EXPECT_EQ(chrome->version_max, "39");
  EXPECT_EQ(loaded.lookup("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")->cls,
            SoftwareClass::kMalware);
}

TEST(FingerprintIo, OutputIsSortedAndCommented) {
  std::stringstream stream;
  save_database(stream, sample_db());
  std::string line;
  std::getline(stream, line);
  EXPECT_EQ(line[0], '#');
  std::getline(stream, line);
  EXPECT_EQ(line[0], '#');
  std::string prev;
  while (std::getline(stream, line)) {
    EXPECT_LT(prev, line.substr(0, 32));
    prev = line.substr(0, 32);
  }
}

TEST(FingerprintIo, RejectsMalformedLines) {
  {
    std::stringstream s("not-a-record\n");
    EXPECT_THROW(load_database(s), std::runtime_error);
  }
  {
    std::stringstream s("xyz\tbrowser\tChrome\t1\t2\n");  // bad hash
    EXPECT_THROW(load_database(s), std::runtime_error);
  }
  {
    std::stringstream s(
        "0123456789abcdef0123456789abcdef\tspaceship\tChrome\t1\t2\n");
    EXPECT_THROW(load_database(s), std::runtime_error);
  }
}

TEST(FingerprintIo, SkipsCommentsAndBlank) {
  std::stringstream s(
      "# header\n\n"
      "0123456789abcdef0123456789abcdef\tbrowser\tChrome\t1\t2\n");
  const auto db = load_database(s);
  EXPECT_EQ(db.size(), 1u);
}

TEST(FingerprintIo, CollisionRulesApplyOnLoad) {
  std::stringstream s(
      "0123456789abcdef0123456789abcdef\tbrowser\tChrome\t1\t1\n"
      "0123456789abcdef0123456789abcdef\tbrowser\tFirefox\t1\t1\n");
  const auto db = load_database(s);
  EXPECT_EQ(db.size(), 0u);  // cross-software collision removed (§4)
  EXPECT_EQ(db.removed_count(), 1u);
}

TEST(FingerprintIo, ClassTokensRoundTrip) {
  for (const auto cls :
       {SoftwareClass::kLibrary, SoftwareClass::kBrowser,
        SoftwareClass::kOsTool, SoftwareClass::kMobileApp,
        SoftwareClass::kDevTool, SoftwareClass::kAntivirus,
        SoftwareClass::kCloudStorage, SoftwareClass::kEmail,
        SoftwareClass::kMalware}) {
    EXPECT_EQ(software_class_from_token(software_class_token(cls)), cls);
  }
  EXPECT_THROW(software_class_from_token("nope"), std::runtime_error);
}

TEST(FingerprintIo, FullCatalogRoundTrip) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto db = tls::study::LongitudinalStudy::build_database(catalog);
  std::stringstream stream;
  save_database(stream, db);
  const auto loaded = load_database(stream);
  EXPECT_EQ(loaded.size(), db.size());
  for (const auto& [hash, label] : db.entries()) {
    const auto* l = loaded.lookup(hash);
    ASSERT_NE(l, nullptr) << hash;
    EXPECT_EQ(l->software, label.software);
  }
}

}  // namespace
}  // namespace tls::fp
