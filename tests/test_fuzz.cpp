// Robustness properties for every wire parser: arbitrary truncation or
// mutation of valid messages must either parse to *something* or throw
// ParseError — never crash, hang, or throw anything else. This is the
// contract the passive monitor relies on when fed hostile traffic.
#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "clients/catalog.hpp"
#include "core/checkpoint.hpp"
#include "daemon/protocol.hpp"
#include "faults/injector.hpp"
#include "fingerprint/md5.hpp"
#include "fingerprint/md5_multilane.hpp"
#include "notary/observe_cache.hpp"
#include "population/traffic.hpp"
#include "notary/snapshot.hpp"
#include "telemetry/flight.hpp"
#include "tlscore/rng.hpp"
#include "wire/alert.hpp"
#include "wire/client_hello.hpp"
#include "wire/extension_codec.hpp"
#include "wire/heartbeat.hpp"
#include "wire/record.hpp"
#include "wire/server_hello.hpp"
#include "wire/server_key_exchange.hpp"
#include "wire/sslv2.hpp"
#include "wire/transcript.hpp"

namespace {

using Bytes = std::vector<std::uint8_t>;

template <typename ParseFn>
void expect_parse_or_parse_error(const Bytes& data, ParseFn&& parse,
                                 const char* what) {
  try {
    parse(data);
  } catch (const tls::wire::ParseError&) {
    // acceptable
  } catch (const std::exception& e) {
    FAIL() << what << ": unexpected exception type: " << e.what();
  }
}

Bytes sample_client_hello_bytes() {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto* cfg =
      catalog.find("Chrome")->config_at(tls::core::Date(2018, 4, 1));
  tls::core::Rng rng(55);
  return tls::clients::make_client_hello(*cfg, rng, "fuzz.test")
      .serialize_record();
}

TEST(Fuzz, ClientHelloEveryTruncation) {
  const auto bytes = sample_client_hello_bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Bytes prefix(bytes.begin(),
                       bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    expect_parse_or_parse_error(
        prefix,
        [](const Bytes& b) { tls::wire::ClientHello::parse_record(b); },
        "truncated client hello");
  }
}

TEST(Fuzz, ClientHelloRandomMutations) {
  const auto base = sample_client_hello_bytes();
  tls::core::Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes mutated = base;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    expect_parse_or_parse_error(
        mutated,
        [](const Bytes& b) { tls::wire::ClientHello::parse_record(b); },
        "mutated client hello");
  }
}

TEST(Fuzz, ClientHelloRandomGarbage) {
  tls::core::Rng rng(88);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes garbage(rng.below(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) { tls::wire::ClientHello::parse_record(b); },
        "garbage client hello");
  }
}

TEST(Fuzz, ServerHelloMutations) {
  tls::wire::ServerHello sh;
  sh.cipher_suite = 0xc02f;
  sh.extensions.push_back(tls::wire::make_supported_versions_server(0x7e02));
  sh.extensions.push_back(tls::wire::make_key_share_server(29));
  const auto base = sh.serialize_record();
  tls::core::Rng rng(99);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes mutated = base;
    mutated[rng.below(mutated.size())] =
        static_cast<std::uint8_t>(rng.next());
    try {
      const auto parsed = tls::wire::ServerHello::parse_record(mutated);
      // Typed accessors on a structurally-valid parse must also be safe.
      (void)parsed.negotiated_version();
      (void)parsed.heartbeat_mode();
      (void)parsed.key_share_group();
    } catch (const tls::wire::ParseError&) {
    }
  }
}

TEST(Fuzz, TypedAccessorsOnMutatedClientHello) {
  const auto base = sample_client_hello_bytes();
  tls::core::Rng rng(111);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = base;
    mutated[rng.below(mutated.size())] =
        static_cast<std::uint8_t>(rng.next());
    try {
      const auto ch = tls::wire::ClientHello::parse_record(mutated);
      (void)ch.server_name();
      (void)ch.supported_groups();
      (void)ch.ec_point_formats();
      (void)ch.supported_versions();
      (void)ch.heartbeat_mode();
      (void)ch.max_offered_version();
    } catch (const tls::wire::ParseError&) {
    }
  }
}

TEST(Fuzz, Sslv2Garbage) {
  tls::core::Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(3 + rng.below(100));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) { tls::wire::Sslv2ClientHello::parse(b); },
        "garbage sslv2");
  }
}

TEST(Fuzz, RecordLayerGarbageAndTruncation) {
  tls::core::Rng rng(201);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.below(128));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        garbage, [](const Bytes& b) { tls::wire::Record::parse(b); },
        "garbage record");
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) {
          std::size_t consumed = 0;
          tls::wire::Record::parse_prefix(b, &consumed);
        },
        "garbage record prefix");
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) { tls::wire::HandshakeMessage::parse(b); },
        "garbage handshake message");
  }
  // Every truncation of a valid record.
  tls::wire::Record rec;
  rec.fragment.assign(40, 0x17);
  const auto bytes = rec.serialize();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Bytes prefix(bytes.begin(),
                       bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    expect_parse_or_parse_error(
        prefix, [](const Bytes& b) { tls::wire::Record::parse(b); },
        "truncated record");
  }
}

TEST(Fuzz, TranscriptStrictParsesOrThrowsLenientNeverThrows) {
  const auto ch_bytes = sample_client_hello_bytes();
  const Bytes base = tls::wire::client_flight(
      tls::wire::ClientHello::parse_record(ch_bytes), /*established=*/true);
  tls::core::Rng rng(202);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = base;
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    expect_parse_or_parse_error(
        mutated, [](const Bytes& b) { tls::wire::parse_flight(b); },
        "mutated flight (strict)");
    ASSERT_NO_THROW(tls::wire::parse_flight_lenient(mutated));
  }
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    const Bytes prefix(base.begin(),
                       base.begin() + static_cast<std::ptrdiff_t>(cut));
    ASSERT_NO_THROW(tls::wire::parse_flight_lenient(prefix));
  }
}

TEST(Fuzz, HeartbeatGarbageAndResponder) {
  tls::core::Rng rng(203);
  const tls::wire::HeartbeatResponder patched(false, Bytes(128, 0xaa));
  const tls::wire::HeartbeatResponder vulnerable(true, Bytes(128, 0xbb));
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.below(96));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) { tls::wire::HeartbeatMessage::parse_record(b); },
        "garbage heartbeat");
    // Responders face the same hostile input and must never throw: either
    // answer or silently drop.
    ASSERT_NO_THROW((void)patched.respond(garbage));
    ASSERT_NO_THROW((void)vulnerable.respond(garbage));
  }
}

TEST(Fuzz, ExtensionCodecGarbageBodies) {
  tls::core::Rng rng(204);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes body(rng.below(64));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        body, [](const Bytes& b) { tls::wire::parse_server_name(b); },
        "server_name");
    expect_parse_or_parse_error(
        body, [](const Bytes& b) { tls::wire::parse_supported_groups(b); },
        "supported_groups");
    expect_parse_or_parse_error(
        body, [](const Bytes& b) { tls::wire::parse_ec_point_formats(b); },
        "ec_point_formats");
    expect_parse_or_parse_error(
        body,
        [](const Bytes& b) { tls::wire::parse_supported_versions_client(b); },
        "supported_versions (client)");
    expect_parse_or_parse_error(
        body,
        [](const Bytes& b) { tls::wire::parse_supported_versions_server(b); },
        "supported_versions (server)");
    expect_parse_or_parse_error(
        body,
        [](const Bytes& b) { tls::wire::parse_signature_algorithms(b); },
        "signature_algorithms");
    expect_parse_or_parse_error(
        body, [](const Bytes& b) { tls::wire::parse_alpn(b); }, "alpn");
    expect_parse_or_parse_error(
        body, [](const Bytes& b) { tls::wire::parse_heartbeat(b); },
        "heartbeat mode");
    expect_parse_or_parse_error(
        body,
        [](const Bytes& b) { tls::wire::parse_key_share_client_groups(b); },
        "key_share (client)");
    expect_parse_or_parse_error(
        body,
        [](const Bytes& b) { tls::wire::parse_key_share_server_group(b); },
        "key_share (server)");
  }
}

TEST(Fuzz, FaultInjectorDrivenFlights) {
  // The chaos tap as a structured fuzzer: realistic flights, deterministic
  // structural corruption, and the parse-or-ParseError contract on top.
  const auto ch_bytes = sample_client_hello_bytes();
  const Bytes base = tls::wire::client_flight(
      tls::wire::ClientHello::parse_record(ch_bytes), /*established=*/true);
  tls::faults::FaultInjector injector(
      tls::faults::FaultConfig::bytes_only(1.0), 205);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes mutated = base;
    injector.corrupt_stream(mutated);
    expect_parse_or_parse_error(
        mutated, [](const Bytes& b) { tls::wire::parse_flight(b); },
        "injector-corrupted flight (strict)");
    const auto flight = tls::wire::parse_flight_lenient(mutated);
    // Legal re-framing (split/coalesce) keeps the record layer walkable;
    // everything else must either salvage a prefix or report the error.
    if (flight.stream_error.has_value()) {
      EXPECT_LE(flight.records.size(),
                tls::faults::record_offsets(mutated).size() + 1);
    }
    expect_parse_or_parse_error(
        mutated,
        [](const Bytes& b) { tls::wire::ClientHello::parse_record(b); },
        "injector-corrupted hello record");
  }
  EXPECT_EQ(injector.stats().total_faults(), 3000u);
}

TEST(Fuzz, AlertAndSkeGarbage) {
  tls::core::Rng rng(321);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.below(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        garbage, [](const Bytes& b) { tls::wire::Alert::parse_record(b); },
        "garbage alert");
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) {
          tls::wire::EcdheServerKeyExchange::parse_record(b);
        },
        "garbage ske");
  }
}

// ---- checkpoint journal decoders (core/checkpoint.hpp, notary/snapshot) --
// These parse bytes read back from disk, where a crash or media fault can
// have left literally anything; the journal's never-abort recovery contract
// rests on the same parse-or-ParseError guarantee as the wire parsers.

TEST(Fuzz, CheckpointFrameTruncationAndMutation) {
  const Bytes payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  const auto frame = tls::study::encode_frame(
      0x1234, {tls::study::FrameKind::kPassiveShard, 500, 3}, payload);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    expect_parse_or_parse_error(
        Bytes(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut)),
        [](const Bytes& b) { (void)tls::study::decode_frame(b); },
        "truncated checkpoint frame");
  }
  tls::core::Rng rng(91);
  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = frame;
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    expect_parse_or_parse_error(
        mutated, [](const Bytes& b) { (void)tls::study::decode_frame(b); },
        "mutated checkpoint frame");
  }
}

TEST(Fuzz, CheckpointFrameHostileLengthPrefix) {
  // A flipped payload_len must be caught by the bounds/size checks, never
  // trusted. Craft frames whose declared length disagrees with reality.
  auto frame = tls::study::encode_frame(
      7, {tls::study::FrameKind::kScanSegment, 1, 1}, Bytes(16, 0x55));
  // payload_len is the u32 right before the 16 payload bytes + 8 checksum.
  const std::size_t len_off = frame.size() - 16 - 8 - 4;
  for (const std::uint8_t hostile : {0x00, 0x01, 0x7f, 0xff}) {
    auto bad = frame;
    bad[len_off] = hostile;      // high byte: up to a 4 GiB claim
    bad[len_off + 3] ^= hostile; // low byte too
    expect_parse_or_parse_error(
        bad, [](const Bytes& b) { (void)tls::study::decode_frame(b); },
        "hostile frame length");
  }
}

TEST(Fuzz, JournalGroupTruncationAndMutation) {
  // Group records are the journal's unit of durability; any damage must
  // surface as ParseError from decode_group — never a crash, hang, or
  // wrong bytes silently accepted.
  std::vector<Bytes> frames;
  for (std::uint32_t s = 0; s < 3; ++s) {
    frames.push_back(tls::study::encode_frame(
        0xfeed, {tls::study::FrameKind::kPassiveShard, 400, s},
        Bytes(24 + s, static_cast<std::uint8_t>(s))));
  }
  const auto group = tls::study::encode_group(0xfeed, frames);
  std::size_t consumed = 0;
  for (std::size_t cut = 0; cut < group.size(); ++cut) {
    EXPECT_THROW(
        (void)tls::study::decode_group({group.data(), cut}, &consumed),
        tls::wire::ParseError)
        << "prefix " << cut;
  }
  // Every single-bit flip anywhere in the record is detected.
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (const std::uint8_t bit : {0x01, 0x80}) {
      auto bad = group;
      bad[i] ^= bit;
      EXPECT_THROW((void)tls::study::decode_group(bad, &consumed),
                   tls::wire::ParseError)
          << "byte " << i;
    }
  }
  // Multi-bit random mutations never escape the ParseError contract.
  tls::core::Rng rng(93);
  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = group;
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    expect_parse_or_parse_error(
        mutated,
        [](const Bytes& b) {
          std::size_t used = 0;
          (void)tls::study::decode_group(b, &used);
        },
        "mutated group record");
  }
}

TEST(Fuzz, JournalGroupHostileCounts) {
  // frame_count and payload_len live in the fixed header; hostile values
  // must be bounds-rejected before any allocation is sized from them.
  const std::vector<Bytes> frames = {tls::study::encode_frame(
      1, {tls::study::FrameKind::kScanSegment, 2, 2}, Bytes(8, 0x11))};
  const auto group = tls::study::encode_group(1, frames);
  std::size_t consumed = 0;
  // offsets: magic u32 | format u32 | digest u64 | frame_count u32 @16 |
  // payload_len u32 @20 (big-endian per ByteWriter).
  for (const std::size_t off : {std::size_t{16}, std::size_t{20}}) {
    for (const std::uint8_t hostile : {0x7f, 0xff}) {
      auto bad = group;
      bad[off] = hostile;  // high byte: claims up to 4 GiB / 4G frames
      EXPECT_THROW((void)tls::study::decode_group(bad, &consumed),
                   tls::wire::ParseError);
    }
  }
  // A frame length prefix pointing past the payload is caught too.
  auto bad = group;
  bad[tls::study::kGroupHeaderSize + 3] = 0xff;
  EXPECT_THROW((void)tls::study::decode_group(bad, &consumed),
               tls::wire::ParseError);
}

TEST(Fuzz, JournalSegmentScanNeverThrowsAndNeverMiscounts) {
  // scan_segment is the recovery entry point: whatever a crashed disk
  // holds, it must partition the bytes into committed groups + torn tail
  // without throwing, and the two must always add up to the input size.
  tls::core::Rng rng(94);
  const auto check = [](const Bytes& segment) {
    const auto scan = tls::study::scan_segment(segment);
    EXPECT_EQ(scan.valid_bytes + scan.torn_bytes, segment.size());
    EXPECT_LE(scan.valid_bytes, segment.size());
    EXPECT_EQ(scan.boundaries.size(), scan.groups);
    return scan;
  };
  // Pure garbage of many sizes.
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.below(600));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    const auto scan = check(garbage);
    EXPECT_EQ(scan.groups * 0, 0u);  // no crash is the property under test
  }
  // Valid multi-group segments with a random mutation: the scan stops at
  // (or before) the damage and the intact prefix replays unchanged.
  std::vector<Bytes> frames;
  for (std::uint32_t s = 0; s < 2; ++s) {
    frames.push_back(tls::study::encode_frame(
        5, {tls::study::FrameKind::kPassiveShard, 300, s}, Bytes(30, 0x3c)));
  }
  Bytes segment;
  for (int g = 0; g < 4; ++g) {
    const auto group = tls::study::encode_group(5, frames);
    segment.insert(segment.end(), group.begin(), group.end());
  }
  const auto clean = check(segment);
  EXPECT_EQ(clean.groups, 4u);
  EXPECT_EQ(clean.torn_bytes, 0u);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = segment;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u + rng.below(255));
    const auto scan = check(mutated);
    EXPECT_LT(scan.groups, 4u);  // the damaged group can never survive
    for (const auto& frame : scan.frames) {
      // Frames recovered from checksummed groups are bit-exact originals.
      EXPECT_TRUE(frame == frames[0] || frame == frames[1]);
    }
  }
  // Duplicated group records: the scan reports both copies (dedupe is the
  // replay layer's job) and still accounts for every byte.
  Bytes doubled = segment;
  doubled.insert(doubled.end(), segment.begin(), segment.end());
  EXPECT_EQ(check(doubled).groups, 8u);
}

TEST(Fuzz, JournalIndexDecodeGarbageNeverThrows) {
  tls::core::Rng rng(95);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    // decode_index is torn-tail tolerant by contract: garbage is just an
    // index with zero (or few) trustworthy entries.
    const auto entries = tls::study::decode_index(garbage);
    EXPECT_LE(entries.size() * 32, garbage.size());
  }
}

TEST(Fuzz, CheckpointManifestGarbage) {
  tls::study::CheckpointManifest manifest;
  manifest.options_digest = 99;
  const auto bytes = tls::study::encode_manifest(manifest);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    expect_parse_or_parse_error(
        Bytes(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)),
        [](const Bytes& b) { (void)tls::study::decode_manifest(b); },
        "truncated manifest");
  }
  tls::core::Rng rng(92);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.below(96));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    expect_parse_or_parse_error(
        garbage, [](const Bytes& b) { (void)tls::study::decode_manifest(b); },
        "garbage manifest");
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) { (void)tls::study::decode_segment_probe(b); },
        "garbage segment probe");
  }
}

TEST(Fuzz, MonitorSnapshotGarbageAndStaleVersion) {
  const tls::notary::PassiveMonitor empty;
  const auto valid = tls::notary::encode_monitor_state(empty);
  // Stale/foreign snapshot version: first u32.
  for (const std::uint32_t v : {0u, 2u, 0xffffffffu}) {
    auto stale = valid;
    stale[0] = static_cast<std::uint8_t>(v >> 24);
    stale[1] = static_cast<std::uint8_t>(v >> 16);
    stale[2] = static_cast<std::uint8_t>(v >> 8);
    stale[3] = static_cast<std::uint8_t>(v);
    expect_parse_or_parse_error(
        stale,
        [](const Bytes& b) { (void)tls::notary::decode_monitor_state(b); },
        "stale snapshot version");
  }
  tls::core::Rng rng(93);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(4 + rng.below(128));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    // Half the trials keep a valid version header so the fuzz reaches the
    // section decoders instead of dying at the version gate.
    if (trial % 2 == 0) {
      garbage[0] = garbage[1] = garbage[2] = 0;
      garbage[3] = 1;
    }
    expect_parse_or_parse_error(
        garbage,
        [](const Bytes& b) { (void)tls::notary::decode_monitor_state(b); },
        "garbage monitor snapshot");
  }
}

// ---- SIMD hash differentials (ISSUE 7) ----------------------------------
// The multi-lane kernels must be indistinguishable from the scalar
// reference for every batch shape: the scalar path is the RFC-1321-audited
// oracle (test_fingerprint pins its vectors), so scalar == laned digests
// for random batches is the whole correctness argument for dispatch.

// Restores the ambient dispatch (including any TLS_MD5_FORCE pin) on exit
// so these tests can't leak a forced backend into the rest of the suite.
class ForcedBackend {
 public:
  explicit ForcedBackend(tls::fp::Md5Backend backend) {
    tls::fp::md5_force_backend(backend);
  }
  ~ForcedBackend() { tls::fp::md5_force_backend(std::nullopt); }
};

std::vector<std::string> random_batch(tls::core::Rng& rng, std::size_t n) {
  std::vector<std::string> msgs(n);
  for (auto& m : msgs) {
    // Bias toward the padding boundaries: raw uniform lengths would almost
    // never land on 55/56/57/63/64/65, exactly where lane padding can break.
    static constexpr std::size_t kEdges[] = {0,  1,  55, 56,  57,  63,
                                             64, 65, 119, 120, 127, 128};
    const std::size_t len = rng.below(3) == 0
                                ? kEdges[rng.below(std::size(kEdges))]
                                : rng.below(400);
    m.resize(len);
    for (auto& c : m) c = static_cast<char>(rng.next());
  }
  return msgs;
}

TEST(Fuzz, Md5BatchMatchesScalarForEveryBackend) {
  tls::core::Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msgs = random_batch(rng, 1 + rng.below(64));
    std::vector<std::string_view> views(msgs.begin(), msgs.end());

    std::vector<std::array<std::uint8_t, 16>> want(views.size());
    {
      ForcedBackend forced(tls::fp::Md5Backend::kScalar);
      tls::fp::md5_batch(views, want);
    }
    // The scalar batch path must itself agree with the incremental oracle.
    for (std::size_t i = 0; i < views.size(); ++i) {
      ASSERT_EQ(tls::fp::to_hex(want[i]), tls::fp::Md5::hex(views[i]))
          << "trial=" << trial << " lane=" << i;
    }

    for (const auto backend :
         {tls::fp::Md5Backend::kSse2, tls::fp::Md5Backend::kAvx2}) {
      ForcedBackend forced(backend);
      if (tls::fp::md5_active_backend() != backend) continue;  // host limit
      std::vector<std::array<std::uint8_t, 16>> got(views.size());
      tls::fp::md5_batch(views, got);
      for (std::size_t i = 0; i < views.size(); ++i) {
        ASSERT_EQ(tls::fp::to_hex(got[i]), tls::fp::to_hex(want[i]))
            << "trial=" << trial << " lane=" << i << " backend="
            << tls::fp::to_string(backend);
      }
    }
  }
}

TEST(Fuzz, Md5ForcedScalarDispatchStaysExercised) {
  // Guards the fallback on wide hosts: forcing scalar must actually take
  // effect (CI runs the whole bench under TLS_MD5_FORCE=scalar and compares
  // digests; this is the unit-level version of that gate).
  ForcedBackend forced(tls::fp::Md5Backend::kScalar);
  ASSERT_EQ(tls::fp::md5_active_backend(), tls::fp::Md5Backend::kScalar);
  const std::string_view msg = "forced-scalar dispatch probe";
  std::vector<std::string_view> views = {msg};
  std::vector<std::array<std::uint8_t, 16>> got(1);
  tls::fp::md5_batch(views, got);
  EXPECT_EQ(tls::fp::to_hex(got[0]), tls::fp::Md5::hex(msg));
}

TEST(Fuzz, GenCacheTemplatePatchMatchesFromScratchSerialization) {
  // The GenCache fast path rests on one invariant: splicing the 32-byte
  // random (and, when present, a 32-byte session id) into the compiled
  // record bytes at the fixed offsets yields exactly serialize_record() of
  // the identically patched hello. Fuzz it over every standard-catalog
  // config × RNG states, base and resume variants.
  using tls::population::GenCache;
  const auto catalog = tls::clients::Catalog::standard();
  tls::core::Rng rng(0x7e3a11);
  std::size_t patched = 0, bypassed = 0;
  for (const auto& profile : catalog.profiles()) {
    for (const auto& cfg : profile.versions) {
      const GenCache::TemplateSet ts = GenCache::compile(cfg);
      if (ts.bypass) {
        // Only connection-variant hellos may skip the template path.
        EXPECT_TRUE(cfg.grease || cfg.randomizes_cipher_order) << profile.name;
        ++bypassed;
        continue;
      }
      ASSERT_EQ(ts.base.wire, ts.base.hello.serialize_record());
      if (ts.base.has_session_id) {
        // generate_into patches exactly 32 id bytes; any other emitted
        // length would corrupt the record.
        ASSERT_EQ(ts.base.hello.session_id.size(), 32u) << profile.name;
      }
      const auto patch_and_check = [&](const GenCache::WireTemplate& tm) {
        auto hello = tm.hello;
        auto wire = tm.wire;
        ASSERT_LE(GenCache::kRandomOffset + 32, wire.size());
        for (auto& b : hello.random) b = static_cast<std::uint8_t>(rng.next());
        std::copy(hello.random.begin(), hello.random.end(),
                  wire.begin() + GenCache::kRandomOffset);
        if (tm.has_session_id) {
          ASSERT_LE(GenCache::kSessionIdOffset + 32, wire.size());
          hello.session_id.resize(32);
          for (auto& b : hello.session_id) {
            b = static_cast<std::uint8_t>(rng.next());
          }
          std::copy(hello.session_id.begin(), hello.session_id.end(),
                    wire.begin() + GenCache::kSessionIdOffset);
        }
        ASSERT_EQ(wire, hello.serialize_record()) << profile.name;
        ++patched;
      };
      for (int iter = 0; iter < 8; ++iter) {
        patch_and_check(ts.base);
        if (ts.has_resume) patch_and_check(ts.resume);
      }
    }
  }
  EXPECT_GT(patched, 1000u);
  EXPECT_GT(bypassed, 0u);  // the standard catalog has GREASE configs
}

// ---- daemon wire protocol (src/daemon/protocol.hpp) ---------------------
// The FrameDecoder contract is NEVER-throwing: arbitrary bytes in arbitrary
// chunkings must yield frames or a poisoned decoder, nothing else. These
// lanes drive it the way a hostile/flaky network would.

tls::daemon::CapturePayload sample_capture() {
  tls::daemon::CapturePayload cap;
  cap.month_index = tls::core::Month(2016, 3).index();
  cap.day = tls::core::Date(2016, 3, 14);
  cap.success = true;
  cap.client = sample_client_hello_bytes();
  cap.server = {0x16, 0x03, 0x03, 0x00, 0x02, 0x0e, 0x00};
  return cap;
}

Bytes sample_daemon_stream() {
  using tls::daemon::FrameType;
  Bytes stream;
  const auto append = [&stream](FrameType type, const Bytes& payload) {
    const auto f = tls::daemon::encode_frame(type, payload);
    stream.insert(stream.end(), f.begin(), f.end());
  };
  append(FrameType::kHello, {'f', 'u', 'z', 'z'});
  append(FrameType::kCapture, tls::daemon::encode_capture(sample_capture()));
  append(FrameType::kQueryStats, {});
  append(FrameType::kCreditGrant, tls::daemon::encode_credit_grant(8));
  append(FrameType::kGoodbye, {});
  return stream;
}

TEST(Fuzz, DaemonDecoderEveryChunkingYieldsTheSameFrames) {
  const auto stream = sample_daemon_stream();
  // Reference: one whole-stream feed.
  tls::daemon::FrameDecoder whole;
  const auto expected = whole.feed(stream);
  ASSERT_EQ(expected.size(), 5u);
  EXPECT_FALSE(whole.poisoned());
  EXPECT_EQ(whole.buffered_bytes(), 0u);

  // Interleaved partial reads: every fixed chunk size, including the
  // slow-loris one-byte-at-a-time case, reassembles identical frames.
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    tls::daemon::FrameDecoder decoder;
    std::vector<tls::daemon::Frame> got;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const auto n = std::min(chunk, stream.size() - off);
      auto frames = decoder.feed({stream.data() + off, n});
      for (auto& f : frames) got.push_back(std::move(f));
    }
    ASSERT_EQ(got.size(), expected.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].type, expected[i].type) << "chunk=" << chunk;
      EXPECT_EQ(got[i].payload, expected[i].payload) << "chunk=" << chunk;
    }
    EXPECT_FALSE(decoder.poisoned());
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }

  // Every truncation of the stream: whole frames up to the cut decode,
  // nothing throws, and the remainder stays buffered, never fabricated.
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    tls::daemon::FrameDecoder decoder;
    const auto frames = decoder.feed({stream.data(), cut});
    EXPECT_LE(frames.size(), 5u);
    EXPECT_FALSE(decoder.poisoned()) << "prefix " << cut;
  }
}

TEST(Fuzz, DaemonDecoderMutationsNeverThrowAndPoisonIsPermanent) {
  const auto stream = sample_daemon_stream();
  const auto valid_tail = tls::daemon::encode_frame(
      tls::daemon::FrameType::kQueryStats, {});
  tls::core::Rng rng(0xdae);
  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = stream;
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    tls::daemon::FrameDecoder decoder;
    std::size_t frames_out = 0;
    try {
      // Random chunking while mutated — partial reads plus corruption.
      std::size_t off = 0;
      while (off < mutated.size()) {
        const auto n =
            std::min<std::size_t>(1 + rng.below(64), mutated.size() - off);
        frames_out += decoder.feed({mutated.data() + off, n}).size();
        off += n;
      }
      if (decoder.poisoned()) {
        // Poison is permanent: a perfectly valid frame after the damage
        // must be ignored, and the poison prefix is bounded for booking.
        EXPECT_NE(decoder.error(), tls::daemon::DecodeError::kNone);
        EXPECT_TRUE(decoder.feed(valid_tail).empty());
        EXPECT_LE(decoder.poison_prefix().size(), 64u);
        EXPECT_NE(std::string(
                      tls::daemon::decode_error_name(decoder.error())),
                  "?");
      } else {
        // Flips that keep all five checksums valid are astronomically
        // unlikely; flips confined to payload bytes are caught by the
        // checksum, so surviving frames must be checksum-clean decodes.
        EXPECT_LE(frames_out, 5u);
      }
    } catch (const std::exception& e) {
      FAIL() << "daemon decoder threw on mutated stream: " << e.what();
    }
  }
}

TEST(Fuzz, DaemonDecoderRandomGarbageIsBoundedAndSilent) {
  tls::core::Rng rng(0xfeedd);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes garbage(rng.below(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    tls::daemon::FrameDecoder decoder(/*max_frame_bytes=*/4096);
    try {
      const auto frames = decoder.feed(garbage);
      // Random bytes can't mint a checksummed frame.
      EXPECT_TRUE(frames.empty());
      // Bounded memory: whatever happened, the decoder holds no more than
      // the bytes it was fed, and a poisoned one books a capped prefix.
      EXPECT_LE(decoder.buffered_bytes(), garbage.size());
      EXPECT_LE(decoder.poison_prefix().size(), 64u);
    } catch (const std::exception& e) {
      FAIL() << "daemon decoder threw on garbage: " << e.what();
    }
  }
}

TEST(Fuzz, DaemonCapturePayloadTruncationAndMutation) {
  const auto payload = tls::daemon::encode_capture(sample_capture());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    expect_parse_or_parse_error(
        Bytes(payload.begin(),
              payload.begin() + static_cast<std::ptrdiff_t>(cut)),
        [](const Bytes& b) { (void)tls::daemon::decode_capture(b); },
        "truncated capture payload");
  }
  tls::core::Rng rng(0xcab);
  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = payload;
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    expect_parse_or_parse_error(
        mutated, [](const Bytes& b) { (void)tls::daemon::decode_capture(b); },
        "mutated capture payload");
  }
}

TEST(Fuzz, DaemonCreditMachinesHoldInvariantsUnderRandomOps) {
  // Drive gate + client with a random op mix, including hostile grants the
  // protocol forbids, and check the conservation invariants after every
  // step: the gate never lets outstanding exceed its window, credits are
  // neither minted nor destroyed (outstanding + returnable + granted ==
  // consumed), and the client saturates instead of wrapping.
  tls::core::Rng rng(0x9c4ed17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto window = static_cast<std::uint32_t>(1 + rng.below(16));
    tls::daemon::CreditGate gate(window);
    tls::daemon::CreditClient client;
    client.on_grant(window);  // accept-time grant, as the daemon sends
    std::uint64_t consumed = 0, resolved = 0, granted_back = 0;
    std::uint64_t violations = 0;
    for (int op = 0; op < 400; ++op) {
      switch (rng.below(5)) {
        case 0:  // client tries to send; gate must agree with its mirror
          if (client.try_send()) {
            if (!gate.consume()) {
              // Client had a credit the gate didn't — only possible after
              // a hostile grant below inflated the client.
              ++violations;
            } else {
              ++consumed;
            }
          }
          break;
        case 1:  // a capture resolves (ingest or shed)
          if (gate.outstanding() > 0) {
            gate.complete();
            ++resolved;
          }
          break;
        case 2: {  // daemon flushes a grant batch to the client
          const auto grant = gate.take_grant();
          granted_back += grant;
          if (grant > 0) client.on_grant(grant);
          break;
        }
        case 3:  // spurious complete (nothing outstanding): clamp, not wrap
          if (gate.outstanding() == 0) gate.complete();
          break;
        case 4:  // hostile grant: client must saturate, never wrap to 0
          if (rng.below(8) == 0) {
            client.on_grant(0xffffffffu);
            EXPECT_EQ(client.available(), 0xffffffffu);
          }
          break;
      }
      ASSERT_LE(gate.outstanding(), window);
      ASSERT_LE(gate.returnable() + gate.outstanding(), window);
      // Conservation: every consumed credit is outstanding, granted back,
      // or awaiting a grant — never minted, never destroyed.
      ASSERT_EQ(consumed,
                gate.outstanding() + granted_back + gate.returnable());
      ASSERT_EQ(resolved, granted_back + gate.returnable());
      // take_grant drains fully.
      if (gate.returnable() == 0) EXPECT_EQ(gate.take_grant(), 0u);
    }
    // Quiesce: resolve everything outstanding; all credits come home.
    while (gate.outstanding() > 0) {
      gate.complete();
      ++resolved;
    }
    granted_back += gate.take_grant();
    EXPECT_EQ(consumed, resolved);
    EXPECT_EQ(granted_back, resolved);
    EXPECT_EQ(gate.returnable(), 0u);
  }
}

TEST(Fuzz, Fnv1a64BatchMatchesScalarChain) {
  tls::core::Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msgs = random_batch(rng, 1 + rng.below(64));
    std::vector<std::span<const std::uint8_t>> views;
    views.reserve(msgs.size());
    for (const auto& m : msgs) {
      views.emplace_back(reinterpret_cast<const std::uint8_t*>(m.data()),
                         m.size());
    }
    std::vector<std::uint64_t> got(views.size());
    tls::fp::fnv1a64_batch(views, got);
    for (std::size_t i = 0; i < views.size(); ++i) {
      ASSERT_EQ(got[i], tls::notary::ObserveCache::fnv1a64(views[i]))
          << "trial=" << trial << " lane=" << i;
    }
  }
}

// The flight-dump decoder and renderer are post-mortem tools: they must
// survive arbitrary mutation or truncation of a FLIGHT.bin image (torn
// crash dumps, half-written autodumps) without throwing — a best-effort
// rendering of damaged evidence beats an exception in the debugger.
TEST(Fuzz, FlightDecoderAndRendererNeverThrow) {
  tls::telemetry::FlightRecorder recorder(3, 16);
  tls::core::Rng seed_rng(1717);
  for (int i = 0; i < 64; ++i) {
    recorder.lane(seed_rng.below(3))
        .record(static_cast<tls::telemetry::FlightEventKind>(
                    1 + seed_rng.below(14)),
                static_cast<std::uint32_t>(seed_rng.next()), seed_rng.next(),
                i);
  }
  const auto image = recorder.serialize();

  tls::core::Rng rng(9191);
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = image;
    const int flips = 1 + static_cast<int>(rng.below(16));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    if (rng.below(4) == 0) mutated.resize(rng.below(mutated.size() + 1));
    try {
      const auto dump = tls::telemetry::decode_flight(
          {mutated.data(), mutated.size()});
      // Decoded events are bounded by the declared geometry.
      EXPECT_LE(dump.events.size(),
                dump.totals.size() * std::size_t{dump.ring_capacity});
      (void)tls::telemetry::render_flight({mutated.data(), mutated.size()},
                                          /*max_events=*/256);
    } catch (...) {
      FAIL() << "flight decode/render threw on trial " << trial;
    }
  }
  // Pure random garbage, including sizes that mimic a plausible header.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng.below(4096));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)tls::telemetry::decode_flight({garbage.data(), garbage.size()});
      (void)tls::telemetry::render_flight({garbage.data(), garbage.size()});
    } catch (...) {
      FAIL() << "flight decode/render threw on garbage trial " << trial;
    }
  }
}

}  // namespace
