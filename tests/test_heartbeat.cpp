#include <gtest/gtest.h>

#include "scan/scanner.hpp"
#include "wire/heartbeat.hpp"

namespace tls::wire {
namespace {

TEST(Heartbeat, WellFormedRoundTrip) {
  HeartbeatMessage m;
  m.type = HeartbeatMessageType::kRequest;
  m.payload = {1, 2, 3};
  m.claimed_payload_length = 3;
  const auto bytes = m.serialize_record(0x0303);
  const auto parsed = HeartbeatMessage::parse_record(bytes);
  EXPECT_EQ(parsed.type, HeartbeatMessageType::kRequest);
  EXPECT_EQ(parsed.claimed_payload_length, 3);
  EXPECT_EQ(parsed.payload, m.payload);
  EXPECT_TRUE(parsed.well_formed());
}

TEST(Heartbeat, ProbeIsDeliberatelyMalformed) {
  const auto probe = make_heartbleed_probe(64);
  EXPECT_FALSE(probe.well_formed());
  EXPECT_EQ(probe.claimed_payload_length, probe.payload.size() + 64);
}

TEST(Heartbeat, ParseRejectsNonHeartbeatRecord) {
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.fragment = {1, 0, 3, 1, 2, 3};
  EXPECT_THROW(HeartbeatMessage::parse_record(rec.serialize()), ParseError);
}

TEST(Heartbeat, VulnerableResponderOverReads) {
  std::vector<std::uint8_t> memory(256, 0xEE);
  const HeartbeatResponder responder(/*vulnerable=*/true, memory);
  const auto probe = make_heartbleed_probe(64);
  const auto response = responder.respond(probe.serialize_record(0x0303));
  ASSERT_TRUE(response.has_value());
  const auto parsed = HeartbeatMessage::parse_record(*response);
  EXPECT_EQ(parsed.type, HeartbeatMessageType::kResponse);
  // Leaked bytes come from the synthetic memory buffer.
  ASSERT_EQ(parsed.payload.size(), probe.payload.size() + 64);
  EXPECT_EQ(parsed.payload.back(), 0xEE);
  EXPECT_TRUE(probe_indicates_vulnerable(response));
}

TEST(Heartbeat, PatchedResponderDiscardsSilently) {
  const HeartbeatResponder responder(/*vulnerable=*/false, {});
  const auto probe = make_heartbleed_probe(64);
  const auto response = responder.respond(probe.serialize_record(0x0303));
  EXPECT_FALSE(response.has_value());  // RFC 6520 §4: discard silently
  EXPECT_FALSE(probe_indicates_vulnerable(response));
}

TEST(Heartbeat, PatchedResponderAnswersWellFormedRequests) {
  const HeartbeatResponder responder(/*vulnerable=*/false, {});
  HeartbeatMessage req;
  req.payload = {9, 9};
  req.claimed_payload_length = 2;
  const auto response = responder.respond(req.serialize_record(0x0303));
  ASSERT_TRUE(response.has_value());
  const auto parsed = HeartbeatMessage::parse_record(*response);
  EXPECT_EQ(parsed.payload, req.payload);
  // A well-formed echo must never register as vulnerable.
  EXPECT_FALSE(probe_indicates_vulnerable(response));
}

TEST(Heartbeat, ResponderIgnoresResponsesAndGarbage) {
  const HeartbeatResponder responder(/*vulnerable=*/true,
                                     std::vector<std::uint8_t>(16, 1));
  HeartbeatMessage resp;
  resp.type = HeartbeatMessageType::kResponse;
  resp.claimed_payload_length = 0;
  EXPECT_FALSE(responder.respond(resp.serialize_record(0x0303)).has_value());
  const std::uint8_t garbage[] = {0x17, 0x03, 0x03, 0x00, 0x01, 0x00};
  EXPECT_FALSE(responder.respond(garbage).has_value());
}

}  // namespace
}  // namespace tls::wire

namespace tls::scan {
namespace {

using tls::core::Month;

TEST(HeartbleedProbe, MatchesAnalyticFraction) {
  const auto pop = tls::servers::ServerPopulation::standard();
  const ActiveScanner scanner(pop);
  tls::core::Rng rng(404);
  for (const auto [y, mo] :
       {std::pair{2014, 3}, std::pair{2014, 6}, std::pair{2016, 6}}) {
    const Month m(y, mo);
    const double analytic = scanner.scan(m).heartbleed_vulnerable;
    const double probed = scanner.heartbleed_probe_fraction(m, 20000, rng);
    EXPECT_NEAR(probed, analytic, 0.02) << m.to_string();
  }
}

TEST(HeartbleedProbe, NonHeartbeatSegmentsNeverVulnerable) {
  const auto pop = tls::servers::ServerPopulation::standard();
  const ActiveScanner scanner(pop);
  tls::core::Rng rng(11);
  const auto* seg = pop.find("web-legacy-cbcfirst");
  ASSERT_NE(seg, nullptr);
  ASSERT_FALSE(seg->config.echo_heartbeat);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(scanner.probe_heartbleed(*seg, Month(2014, 4), rng));
  }
}

}  // namespace
}  // namespace tls::scan
