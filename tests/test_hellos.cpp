#include <gtest/gtest.h>

#include "clients/catalog.hpp"
#include "wire/client_hello.hpp"
#include "wire/server_hello.hpp"
#include "wire/server_key_exchange.hpp"
#include "wire/sslv2.hpp"

namespace tls::wire {
namespace {

ClientHello sample_hello() {
  ClientHello ch;
  ch.legacy_version = 0x0303;
  ch.random.fill(0x42);
  ch.session_id = {1, 2, 3};
  ch.cipher_suites = {0xc02f, 0xc030, 0x009c, 0x0035, 0x000a};
  ch.extensions.push_back(make_server_name("host.test"));
  const std::uint16_t groups[] = {29, 23};
  ch.extensions.push_back(make_supported_groups(groups));
  const std::uint8_t formats[] = {0};
  ch.extensions.push_back(make_ec_point_formats(formats));
  return ch;
}

TEST(ClientHello, BodyRoundTrip) {
  const ClientHello ch = sample_hello();
  const auto parsed = ClientHello::parse_body(ch.serialize_body());
  EXPECT_EQ(parsed, ch);
}

TEST(ClientHello, RecordRoundTrip) {
  const ClientHello ch = sample_hello();
  const auto parsed = ClientHello::parse_record(ch.serialize_record());
  EXPECT_EQ(parsed, ch);
}

TEST(ClientHello, RecordVersionConvention) {
  ClientHello ch = sample_hello();
  ch.legacy_version = 0x0303;
  auto rec = Record::parse_prefix(ch.serialize_record(), nullptr);
  EXPECT_EQ(rec.legacy_version, 0x0301);  // middlebox-compatible
  ch.legacy_version = 0x0300;
  rec = Record::parse_prefix(ch.serialize_record(), nullptr);
  EXPECT_EQ(rec.legacy_version, 0x0300);
}

TEST(ClientHello, NoExtensionsFormIsValid) {
  // Pre-extension clients (OpenSSL 0.9.8, SSLv3 stacks) omit the block.
  ClientHello ch;
  ch.cipher_suites = {0x0005, 0x000a};
  ch.extensions.clear();
  const auto bytes = ch.serialize_body();
  const auto parsed = ClientHello::parse_body(bytes);
  EXPECT_TRUE(parsed.extensions.empty());
  EXPECT_EQ(parsed.cipher_suites, ch.cipher_suites);
}

TEST(ClientHello, RejectsEmptyCipherList) {
  ClientHello ch = sample_hello();
  ch.cipher_suites.clear();
  const auto bytes = ch.serialize_body();
  EXPECT_THROW(ClientHello::parse_body(bytes), ParseError);
}

TEST(ClientHello, RejectsEmptyCompressionList) {
  ClientHello ch = sample_hello();
  ch.compression_methods.clear();
  const auto bytes = ch.serialize_body();
  EXPECT_THROW(ClientHello::parse_body(bytes), ParseError);
}

TEST(ClientHello, RejectsTruncation) {
  const auto bytes = sample_hello().serialize_body();
  for (std::size_t cut : {std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(ClientHello::parse_body(
                     std::span(bytes.data(), cut)),
                 ParseError)
        << "cut=" << cut;
  }
}

TEST(ClientHello, TypedAccessors) {
  const ClientHello ch = sample_hello();
  EXPECT_EQ(*ch.server_name(), "host.test");
  EXPECT_EQ(*ch.supported_groups(), std::vector<std::uint16_t>({29, 23}));
  EXPECT_EQ(*ch.ec_point_formats(), std::vector<std::uint8_t>({0}));
  EXPECT_FALSE(ch.supported_versions().has_value());
  EXPECT_FALSE(ch.heartbeat_mode().has_value());
  EXPECT_TRUE(ch.has_extension(tls::core::ExtensionType::kServerName));
  EXPECT_FALSE(ch.has_extension(tls::core::ExtensionType::kAlpn));
}

TEST(ClientHello, MaxOfferedVersionWithoutExtension) {
  ClientHello ch = sample_hello();
  EXPECT_EQ(ch.max_offered_version(), 0x0303);
}

TEST(ClientHello, MaxOfferedVersionPrefersSupportedVersions) {
  ClientHello ch = sample_hello();
  const std::uint16_t versions[] = {0x2a2a /*GREASE*/, 0x7e02, 0x0303};
  ch.extensions.push_back(make_supported_versions_client(versions));
  EXPECT_EQ(ch.max_offered_version(), 0x7e02);
}

TEST(ClientHello, OffersPredicate) {
  const ClientHello ch = sample_hello();
  EXPECT_TRUE(ch.offers(
      [](const tls::core::CipherSuiteInfo& s) { return tls::core::is_aead(s); }));
  EXPECT_TRUE(ch.offers(
      [](const tls::core::CipherSuiteInfo& s) { return tls::core::is_3des(s); }));
  EXPECT_FALSE(ch.offers(
      [](const tls::core::CipherSuiteInfo& s) { return tls::core::is_rc4(s); }));
}

// Property: every catalog config's emitted hello survives a byte round trip.
class CatalogHelloRoundTrip
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogHelloRoundTrip, SerializeParse) {
  const auto& catalog = tls::clients::Catalog::core_only();
  const auto* profile = catalog.find(GetParam());
  ASSERT_NE(profile, nullptr);
  tls::core::Rng rng(17);
  for (const auto& cfg : profile->versions) {
    const auto hello = tls::clients::make_client_hello(cfg, rng, "rt.test");
    const auto parsed = ClientHello::parse_record(hello.serialize_record());
    EXPECT_EQ(parsed, hello) << profile->name << " " << cfg.version_label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CatalogHelloRoundTrip,
    ::testing::Values("Chrome", "Firefox", "Opera", "Safari", "IE/Edge",
                      "OpenSSL", "OpenSSL 0.9.x", "Android SDK",
                      "Apple SecureTransport", "MS CryptoAPI", "Java JSSE",
                      "NSS", "GridFTP", "Nagios NRPE", "Shodan", "Zbot",
                      "IoT Gateway", "Firefox Nightly"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(ServerHello, RoundTrip) {
  ServerHello sh;
  sh.legacy_version = 0x0303;
  sh.random.fill(9);
  sh.session_id = {7, 7};
  sh.cipher_suite = 0xc02f;
  sh.extensions.push_back(make_renegotiation_info());
  const auto parsed = ServerHello::parse_record(sh.serialize_record());
  EXPECT_EQ(parsed, sh);
}

TEST(ServerHello, NegotiatedVersionFromExtension) {
  ServerHello sh;
  sh.legacy_version = 0x0303;
  sh.cipher_suite = 0x1301;
  sh.extensions.push_back(make_supported_versions_server(0x7f1c));
  EXPECT_EQ(sh.negotiated_version(), 0x7f1c);
  sh.extensions.clear();
  EXPECT_EQ(sh.negotiated_version(), 0x0303);
}

TEST(ServerHello, KeyShareAndHeartbeatAccessors) {
  ServerHello sh;
  sh.extensions.push_back(make_key_share_server(29));
  sh.extensions.push_back(make_heartbeat(1));
  EXPECT_EQ(*sh.key_share_group(), 29);
  EXPECT_EQ(*sh.heartbeat_mode(), 1);
}

TEST(ServerKeyExchange, RoundTrip) {
  const auto ske = EcdheServerKeyExchange::stub(24);
  const auto parsed =
      EcdheServerKeyExchange::parse_record(ske.serialize_record(0x0303));
  EXPECT_EQ(parsed.named_curve, 24);
  EXPECT_EQ(parsed.public_point, ske.public_point);
}

TEST(ServerKeyExchange, RejectsNonNamedCurve) {
  auto body = EcdheServerKeyExchange::stub(23).serialize_body();
  body[0] = 1;  // explicit_prime
  EXPECT_THROW(EcdheServerKeyExchange::parse_body(body), ParseError);
}

TEST(Sslv2, RoundTrip) {
  Sslv2ClientHello ch;
  ch.cipher_specs = {sslv2_ciphers::SSL_CK_RC4_128_WITH_MD5,
                     sslv2_ciphers::SSL_CK_DES_192_EDE3_CBC_WITH_MD5};
  ch.challenge.assign(16, 0xab);
  const auto bytes = ch.serialize();
  EXPECT_TRUE(Sslv2ClientHello::looks_like(bytes));
  const auto parsed = Sslv2ClientHello::parse(bytes);
  EXPECT_EQ(parsed.cipher_specs, ch.cipher_specs);
  EXPECT_EQ(parsed.challenge, ch.challenge);
  EXPECT_EQ(parsed.version, 0x0002);
}

TEST(Sslv2, RejectsNonSslv2) {
  const std::uint8_t tls_bytes[] = {22, 3, 1, 0, 0};
  EXPECT_FALSE(Sslv2ClientHello::looks_like(tls_bytes));
  EXPECT_THROW(Sslv2ClientHello::parse(tls_bytes), ParseError);
}

TEST(Sslv2, RejectsBadCipherSpecLength) {
  Sslv2ClientHello ch;
  ch.cipher_specs = {0x010080};
  auto bytes = ch.serialize();
  bytes[5] = 2;  // cipher-spec-length not divisible by 3
  EXPECT_THROW(Sslv2ClientHello::parse(bytes), ParseError);
}

}  // namespace
}  // namespace tls::wire
