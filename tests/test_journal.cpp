// The group-commit segmented journal (core/journal.hpp): group/index
// codecs, segment scanning, the two backends, the writer's batching and
// graceful degradation, and RunJournal-level recovery semantics — power
// cuts, torn tails, stale index entries, duplicated groups, and resuming a
// journal across durability modes. Study-level soak: group-fault chaos may
// never change an exported byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/study.hpp"
#include "faults/injector.hpp"
#include "wire/errors.hpp"

namespace fs = std::filesystem;

namespace {

using tls::study::CheckpointManifest;
using tls::study::FrameKind;
using tls::study::GroupCommitWriter;
using tls::study::IndexEntry;
using tls::study::JournalErrorClass;
using tls::study::JournalErrorTaxonomy;
using tls::study::JournalMode;
using tls::study::JournalStage;
using tls::study::MemoryJournalBackend;
using tls::study::RunJournal;
using tls::wire::ParseError;

using Bytes = std::vector<std::uint8_t>;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Bytes make_frame(std::uint64_t digest, std::uint32_t month,
                 std::uint32_t slot, std::size_t payload_size) {
  Bytes payload(payload_size);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i + slot);
  }
  return tls::study::encode_frame(
      digest, {FrameKind::kPassiveShard, month, slot}, payload);
}

/// Waits (bounded) until `pred` holds — for the writer's time-based flush.
template <typename Pred>
bool eventually(Pred&& pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---- error taxonomy -----------------------------------------------------

TEST(JournalTaxonomy, ClassifiesErrnoAndExcludesRetriesFromFailures) {
  EXPECT_EQ(tls::study::classify_errno(EINTR), JournalErrorClass::kRetried);
  EXPECT_EQ(tls::study::classify_errno(EAGAIN), JournalErrorClass::kRetried);
  EXPECT_EQ(tls::study::classify_errno(ENOSPC), JournalErrorClass::kNoSpace);
  EXPECT_EQ(tls::study::classify_errno(EDQUOT), JournalErrorClass::kNoSpace);
  EXPECT_EQ(tls::study::classify_errno(EIO), JournalErrorClass::kIo);
  EXPECT_EQ(tls::study::classify_errno(EBADF), JournalErrorClass::kOther);

  JournalErrorTaxonomy t;
  t.record(JournalStage::kWrite, JournalErrorClass::kRetried);
  t.record(JournalStage::kWrite, JournalErrorClass::kRetried);
  t.record(JournalStage::kSync, JournalErrorClass::kIo);
  t.record(JournalStage::kIndex, JournalErrorClass::kNoSpace);
  EXPECT_EQ(t.total(), 4u);
  EXPECT_EQ(t.failures(), 2u);  // retried-and-recovered excluded
  EXPECT_EQ(t.count(JournalStage::kWrite, JournalErrorClass::kRetried), 2u);
  EXPECT_EQ(t.stage_total(JournalStage::kWrite), 2u);

  JournalErrorTaxonomy other;
  other.record(JournalStage::kSync, JournalErrorClass::kIo);
  t.merge(other);
  EXPECT_EQ(t.count(JournalStage::kSync, JournalErrorClass::kIo), 2u);
  EXPECT_EQ(t.failures(), 3u);
}

// ---- group record codec -------------------------------------------------

TEST(GroupCodec, RoundTripPreservesEveryFrameByte) {
  const std::uint64_t digest = 0xabcdef0123456789ull;
  std::vector<Bytes> frames;
  frames.push_back(make_frame(digest, 1, 0, 40));
  frames.push_back(make_frame(digest, 1, 1, 0));  // empty payload is legal
  frames.push_back(make_frame(digest, 2, 0, 333));
  const auto group = tls::study::encode_group(digest, frames);

  std::size_t consumed = 0;
  const auto decoded = tls::study::decode_group(group, &consumed);
  EXPECT_EQ(consumed, group.size());
  EXPECT_EQ(decoded.options_digest, digest);
  ASSERT_EQ(decoded.frames.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded.frames[i], frames[i]) << "frame " << i;
  }
}

TEST(GroupCodec, DecodeStopsAtGroupBoundaryWithTrailingData) {
  const std::uint64_t digest = 7;
  const std::vector<Bytes> frames = {make_frame(digest, 3, 0, 16)};
  auto bytes = tls::study::encode_group(digest, frames);
  const std::size_t group_size = bytes.size();
  // A second group follows — decode_group must consume exactly the first.
  const auto second = tls::study::encode_group(digest, frames);
  bytes.insert(bytes.end(), second.begin(), second.end());
  std::size_t consumed = 0;
  (void)tls::study::decode_group(bytes, &consumed);
  EXPECT_EQ(consumed, group_size);
  // And the remainder decodes as the second group.
  const std::span<const std::uint8_t> rest =
      std::span<const std::uint8_t>(bytes).subspan(consumed);
  std::size_t consumed2 = 0;
  (void)tls::study::decode_group(rest, &consumed2);
  EXPECT_EQ(consumed2, second.size());
}

TEST(GroupCodec, EveryTruncationAndSingleFlipIsRejected) {
  const std::uint64_t digest = 99;
  std::vector<Bytes> frames;
  frames.push_back(make_frame(digest, 8, 0, 24));
  frames.push_back(make_frame(digest, 8, 1, 31));
  const auto group = tls::study::encode_group(digest, frames);

  std::size_t consumed = 0;
  for (std::size_t len = 0; len < group.size(); ++len) {
    EXPECT_THROW((void)tls::study::decode_group({group.data(), len},
                                                &consumed),
                 ParseError)
        << "prefix " << len;
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    auto bad = group;
    bad[i] ^= 0x10;
    EXPECT_THROW((void)tls::study::decode_group(bad, &consumed), ParseError)
        << "byte " << i;
  }
}

// ---- segment scanning ---------------------------------------------------

TEST(SegmentScan, FindsGroupsAndTruncatesAtTornTail) {
  const std::uint64_t digest = 11;
  Bytes segment;
  std::vector<tls::study::SegmentScan::GroupSpan> spans;
  std::size_t n_frames = 0;
  for (std::uint32_t g = 0; g < 3; ++g) {
    std::vector<Bytes> frames;
    for (std::uint32_t f = 0; f <= g; ++f) {
      frames.push_back(make_frame(digest, g, f, 10 + 7 * f));
      ++n_frames;
    }
    const auto group = tls::study::encode_group(digest, frames);
    spans.push_back({segment.size(), group.size()});
    segment.insert(segment.end(), group.begin(), group.end());
  }
  const std::size_t committed = segment.size();
  // A torn tail: half of a fourth group.
  const auto torn = tls::study::encode_group(
      digest, std::vector<Bytes>{make_frame(digest, 9, 0, 50)});
  segment.insert(segment.end(), torn.begin(),
                 torn.begin() + static_cast<std::ptrdiff_t>(torn.size() / 2));

  const auto scan = tls::study::scan_segment(segment);
  EXPECT_EQ(scan.groups, 3u);
  EXPECT_EQ(scan.frames.size(), n_frames);
  EXPECT_EQ(scan.valid_bytes, committed);
  EXPECT_EQ(scan.torn_bytes, segment.size() - committed);
  ASSERT_EQ(scan.boundaries.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(scan.boundaries[i].offset, spans[i].offset);
    EXPECT_EQ(scan.boundaries[i].length, spans[i].length);
  }
}

TEST(SegmentScan, GarbageAndEmptySegmentsNeverThrow) {
  EXPECT_EQ(tls::study::scan_segment({}).groups, 0u);
  Bytes garbage(513);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 5);
  }
  const auto scan = tls::study::scan_segment(garbage);
  EXPECT_EQ(scan.groups, 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.torn_bytes, garbage.size());
}

TEST(SegmentScan, StopsAtFirstDamagedGroupMidSegment) {
  const std::uint64_t digest = 5;
  const auto a = tls::study::encode_group(
      digest, std::vector<Bytes>{make_frame(digest, 1, 0, 20)});
  auto b = tls::study::encode_group(
      digest, std::vector<Bytes>{make_frame(digest, 2, 0, 20)});
  const auto c = tls::study::encode_group(
      digest, std::vector<Bytes>{make_frame(digest, 3, 0, 20)});
  b[b.size() / 2] ^= 0x01;  // bit flip inside a committed group
  Bytes segment = a;
  segment.insert(segment.end(), b.begin(), b.end());
  segment.insert(segment.end(), c.begin(), c.end());
  // The scan cannot trust anything past the first damaged record (group
  // framing is self-delimiting only while checksums hold), so the suffix —
  // including the still-intact third group — is recompute territory.
  const auto scan = tls::study::scan_segment(segment);
  EXPECT_EQ(scan.groups, 1u);
  EXPECT_EQ(scan.valid_bytes, a.size());
  EXPECT_EQ(scan.torn_bytes, segment.size() - a.size());
}

// ---- INDEX sidecar codec ------------------------------------------------

TEST(IndexCodec, RoundTripAndTornTailStopsCleanly) {
  const std::vector<IndexEntry> entries = {
      {1, 0, 100}, {1, 100, 250}, {2, 0, 64}};
  Bytes blob;
  for (const auto& e : entries) {
    const auto one = tls::study::encode_index_entry(e);
    blob.insert(blob.end(), one.begin(), one.end());
  }
  EXPECT_EQ(tls::study::decode_index(blob), entries);

  // A torn final entry yields the intact prefix.
  Bytes torn = blob;
  torn.resize(torn.size() - 5);
  EXPECT_EQ(tls::study::decode_index(torn).size(), 2u);

  // A corrupt middle entry stops the decode there (append-only sidecar:
  // nothing after the damage is trusted).
  Bytes bad = blob;
  bad[40] ^= 0x80;
  EXPECT_EQ(tls::study::decode_index(bad).size(), 1u);
  EXPECT_TRUE(tls::study::decode_index({}).empty());
}

// ---- in-memory backend --------------------------------------------------

TEST(MemoryBackend, SyncWatermarkSurvivesPowerCutUnsyncedTailDoesNot) {
  MemoryJournalBackend backend;
  ASSERT_TRUE(backend.open_segment(4));
  const Bytes a = {1, 2, 3, 4};
  const Bytes b = {9, 9};
  ASSERT_TRUE(backend.append(a));
  ASSERT_TRUE(backend.sync());
  ASSERT_TRUE(backend.append(b));
  backend.drop_unsynced();  // power cut: the un-fsynced tail vanishes
  backend.close_segment();

  Bytes out;
  ASSERT_TRUE(backend.read_segment(4, out));
  EXPECT_EQ(out, a);
  EXPECT_EQ(backend.list_segments(), std::vector<std::uint32_t>{4u});
  EXPECT_EQ(backend.sync_calls(), 1u);

  ASSERT_TRUE(backend.truncate_segment(4, 1));
  ASSERT_TRUE(backend.read_segment(4, out));
  EXPECT_EQ(out, Bytes{1});
  ASSERT_TRUE(backend.remove_segment(4));
  EXPECT_TRUE(backend.list_segments().empty());

  const Bytes idx = {5, 6, 7};
  ASSERT_TRUE(backend.append_index(idx));
  ASSERT_TRUE(backend.read_index(out));
  EXPECT_EQ(out, idx);
  ASSERT_TRUE(backend.clear_index());
  ASSERT_TRUE(backend.read_index(out));
  EXPECT_TRUE(out.empty());
}

// ---- group-commit writer ------------------------------------------------

TEST(GroupWriter, BatchesManyFramesIntoOneFsync) {
  MemoryJournalBackend backend;
  GroupCommitWriter::Config wc;
  wc.group_frames = 8;
  wc.group_ms = 10'000;  // only the count threshold may trigger
  wc.options_digest = 21;
  GroupCommitWriter writer(&backend, wc, nullptr);
  for (std::uint32_t i = 0; i < 8; ++i) {
    writer.enqueue("f" + std::to_string(i), make_frame(21, 1, i, 64));
  }
  writer.flush();
  const auto stats = writer.stats();
  EXPECT_EQ(stats.frames, 8u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.fsyncs, 1u);
  EXPECT_FALSE(stats.degraded);
  writer.stop();
  EXPECT_EQ(backend.sync_calls(), 1u);

  // The committed group replays to the same 8 frames.
  Bytes segment;
  ASSERT_TRUE(backend.read_segment(wc.first_segment_id, segment));
  const auto scan = tls::study::scan_segment(segment);
  EXPECT_EQ(scan.groups, 1u);
  EXPECT_EQ(scan.frames.size(), 8u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(GroupWriter, TimeThresholdCommitsATrickleWithoutFlush) {
  MemoryJournalBackend backend;
  GroupCommitWriter::Config wc;
  wc.group_frames = 64;  // never reached
  wc.group_ms = 1;
  wc.options_digest = 3;
  GroupCommitWriter writer(&backend, wc, nullptr);
  writer.enqueue("lone", make_frame(3, 2, 0, 32));
  EXPECT_TRUE(eventually([&] { return writer.stats().frames == 1; }));
  EXPECT_EQ(writer.stats().groups, 1u);
  writer.stop();
}

TEST(GroupWriter, DegradesToPerFrameFallbackAfterRepeatedFailures) {
  const auto fallback = fresh_dir("journal_degrade_fallback");
  MemoryJournalBackend backend;
  backend.fail_appends_after(0);  // the device is broken from the start
  GroupCommitWriter::Config wc;
  wc.group_frames = 1;  // one batch per frame -> failures accumulate fast
  wc.group_ms = 1;
  wc.options_digest = 17;
  wc.fallback_dir = fallback.string();
  wc.max_consecutive_failures = 2;
  GroupCommitWriter writer(&backend, wc, nullptr);
  for (std::uint32_t i = 0; i < 4; ++i) {
    writer.enqueue("frame_" + std::to_string(i) + ".frame",
                   make_frame(17, 6, i, 48));
  }
  writer.flush();
  const auto stats = writer.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_TRUE(writer.degraded());
  EXPECT_EQ(stats.fallback_frames, 4u);
  EXPECT_EQ(stats.frames, 0u);  // nothing made it into a group
  writer.stop();

  // Every frame survived through the legacy path, byte-identical.
  EXPECT_GT(backend.errors().stage_total(JournalStage::kWrite), 0u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto path = fallback / ("frame_" + std::to_string(i) + ".frame");
    ASSERT_TRUE(fs::exists(path)) << path;
    const auto text = slurp(path);
    const Bytes bytes(text.begin(), text.end());
    const auto frame = tls::study::decode_frame(bytes);
    EXPECT_EQ(frame.header.slot, i);
  }
  fs::remove_all(fallback);
}

// ---- RunJournal over the segment store ----------------------------------

RunJournal::Config grouped_config(const fs::path& dir,
                                  const CheckpointManifest& manifest,
                                  MemoryJournalBackend* backend) {
  RunJournal::Config cfg;
  cfg.directory = dir.string();
  cfg.manifest = manifest;
  cfg.mode = JournalMode::kGrouped;
  cfg.group_frames = 2;
  cfg.group_ms = 1;
  cfg.backend = backend;
  return cfg;
}

TEST(RunJournalGrouped, AppendFlushResumeAcrossBothModes) {
  const auto dir = fresh_dir("journal_grouped_modes");
  CheckpointManifest manifest;
  manifest.options_digest = 31;
  {
    RunJournal::Config cfg;
    cfg.directory = dir.string();
    cfg.manifest = manifest;
    cfg.mode = JournalMode::kGrouped;
    cfg.group_frames = 4;
    RunJournal journal(cfg);
    for (std::uint32_t s = 0; s < 10; ++s) {
      journal.append(FrameKind::kPassiveShard, 60, s,
                     Bytes(20 + s, static_cast<std::uint8_t>(s)));
    }
  }  // dtor stops the writer, flushing every pending group
  // Frames live inside segments; the legacy frame store stays empty.
  EXPECT_TRUE(fs::is_empty(dir / "frames"));
  EXPECT_TRUE(fs::exists(dir / "segments"));

  for (const auto mode : {JournalMode::kGrouped, JournalMode::kPerFrame}) {
    RunJournal::Config cfg;
    cfg.directory = dir.string();
    cfg.resume = true;
    cfg.manifest = manifest;
    cfg.mode = mode;
    RunJournal resumed(cfg);
    const auto report = resumed.snapshot_report();
    EXPECT_TRUE(report.resumed);
    EXPECT_EQ(report.frames_replayed, 10u);
    EXPECT_EQ(report.frames_corrupt, 0u);
    EXPECT_GT(report.groups_committed, 0u);
    for (std::uint32_t s = 0; s < 10; ++s) {
      const auto* payload =
          resumed.replayed(FrameKind::kPassiveShard, 60, s);
      ASSERT_NE(payload, nullptr) << "slot " << s;
      EXPECT_EQ(*payload, Bytes(20 + s, static_cast<std::uint8_t>(s)));
    }
  }
  fs::remove_all(dir);
}

TEST(RunJournalGrouped, PowerCutLosesOnlyTheUnsyncedTail) {
  const auto dir = fresh_dir("journal_grouped_powercut");
  CheckpointManifest manifest;
  manifest.options_digest = 47;
  MemoryJournalBackend backend;
  {
    RunJournal journal(grouped_config(dir, manifest, &backend));
    for (std::uint32_t s = 0; s < 4; ++s) {
      journal.append(FrameKind::kPassiveShard, 70, s, Bytes(16, 0xaa));
    }
    journal.flush();
  }
  // Power cut mid-group: a later segment holds an appended but never
  // fsynced half-group. The crash rule says it was never written.
  const auto partial = tls::study::encode_group(
      manifest.options_digest,
      std::vector<Bytes>{make_frame(manifest.options_digest, 70, 8, 30)});
  ASSERT_TRUE(backend.open_segment(50));
  ASSERT_TRUE(backend.append(
      std::span<const std::uint8_t>(partial).first(partial.size() - 3)));
  backend.drop_unsynced();
  backend.close_segment();

  auto cfg = grouped_config(dir, manifest, &backend);
  cfg.resume = true;
  RunJournal resumed(cfg);
  const auto report = resumed.snapshot_report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 4u);
  EXPECT_EQ(report.groups_torn, 0u);  // clean cut at a group boundary
  EXPECT_EQ(resumed.replayed(FrameKind::kPassiveShard, 70, 8), nullptr);
  fs::remove_all(dir);
}

TEST(RunJournalGrouped, TornTailIsQuarantinedTruncatedAndRecomputable) {
  const auto dir = fresh_dir("journal_grouped_torn");
  CheckpointManifest manifest;
  manifest.options_digest = 53;
  MemoryJournalBackend backend;
  {
    RunJournal journal(grouped_config(dir, manifest, &backend));
    for (std::uint32_t s = 0; s < 4; ++s) {
      journal.append(FrameKind::kPassiveShard, 80, s, Bytes(16, 0xbb));
    }
    journal.flush();
  }
  // This torn tail DID reach the platters (synced) — media damage rather
  // than a power cut. Replay must truncate and quarantine it.
  Bytes garbage(37, 0x5a);
  ASSERT_TRUE(backend.open_segment(60));
  ASSERT_TRUE(backend.append(garbage));
  ASSERT_TRUE(backend.sync());
  backend.close_segment();

  auto cfg = grouped_config(dir, manifest, &backend);
  cfg.resume = true;
  RunJournal resumed(cfg);
  const auto report = resumed.snapshot_report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 4u);
  EXPECT_EQ(report.groups_torn, 1u);
  EXPECT_EQ(report.torn_bytes, garbage.size());
  ASSERT_FALSE(report.quarantined.empty());
  bool found_tail = false;
  for (const auto& q : report.quarantined) {
    if (q.find("tail.torn") != std::string::npos) {
      found_tail = true;
      EXPECT_TRUE(fs::exists(q)) << q;
      EXPECT_EQ(slurp(q).size(), garbage.size());
    }
  }
  EXPECT_TRUE(found_tail);
  Bytes after;
  ASSERT_TRUE(backend.read_segment(60, after));
  EXPECT_TRUE(after.empty());  // scan-truncated to the last valid boundary

  // A third pass sees a clean journal: the tail is gone for good.
  RunJournal again(cfg);
  EXPECT_EQ(again.snapshot_report().groups_torn, 0u);
  EXPECT_EQ(again.snapshot_report().frames_replayed, 4u);
  fs::remove_all(dir);
}

TEST(RunJournalGrouped, StaleIndexEntriesAreCountedAndIgnored) {
  const auto dir = fresh_dir("journal_grouped_stale");
  CheckpointManifest manifest;
  manifest.options_digest = 67;
  MemoryJournalBackend backend;
  {
    RunJournal journal(grouped_config(dir, manifest, &backend));
    for (std::uint32_t s = 0; s < 4; ++s) {
      journal.append(FrameKind::kPassiveShard, 90, s, Bytes(16, 0xcc));
    }
    journal.flush();
  }
  // Two lies: an entry pointing into a committed segment at a non-boundary
  // offset, and one naming a segment that does not exist.
  const auto seg_id = backend.list_segments().front();
  ASSERT_TRUE(backend.append_index(
      tls::study::encode_index_entry({seg_id, 999999, 5})));
  ASSERT_TRUE(backend.append_index(
      tls::study::encode_index_entry({4040, 0, 64})));

  auto cfg = grouped_config(dir, manifest, &backend);
  cfg.resume = true;
  RunJournal resumed(cfg);
  const auto report = resumed.snapshot_report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.frames_replayed, 4u);  // the scan is the ground truth
  EXPECT_GE(report.index_stale, 2u);

  // The index was rebuilt to match the scan exactly.
  Bytes index_bytes;
  ASSERT_TRUE(backend.read_index(index_bytes));
  Bytes segment;
  ASSERT_TRUE(backend.read_segment(seg_id, segment));
  const auto scan = tls::study::scan_segment(segment);
  std::size_t entries_for_seg = 0;
  for (const auto& e : tls::study::decode_index(index_bytes)) {
    if (e.segment != seg_id) continue;
    ++entries_for_seg;
    EXPECT_TRUE(std::any_of(
        scan.boundaries.begin(), scan.boundaries.end(), [&](const auto& g) {
          return g.offset == e.offset && g.length == e.length;
        }));
  }
  EXPECT_EQ(entries_for_seg, scan.boundaries.size());
  fs::remove_all(dir);
}

TEST(RunJournalGrouped, DuplicatedGroupRecordsDedupeOnReplay) {
  const auto dir = fresh_dir("journal_grouped_dup");
  CheckpointManifest manifest;
  manifest.options_digest = 71;
  MemoryJournalBackend backend;
  {  // cold construction stamps the manifest so the resume below accepts
    RunJournal journal(grouped_config(dir, manifest, &backend));
  }
  const auto group = tls::study::encode_group(
      manifest.options_digest,
      std::vector<Bytes>{make_frame(manifest.options_digest, 95, 0, 25)});
  ASSERT_TRUE(backend.open_segment(1));
  ASSERT_TRUE(backend.append(group));
  ASSERT_TRUE(backend.append(group));  // replayed write: same group twice
  ASSERT_TRUE(backend.sync());
  backend.close_segment();

  auto cfg = grouped_config(dir, manifest, &backend);
  cfg.resume = true;
  RunJournal resumed(cfg);
  const auto report = resumed.snapshot_report();
  EXPECT_EQ(report.groups_committed, 2u);
  EXPECT_EQ(report.frames_replayed, 1u);  // first verified copy wins
  EXPECT_EQ(report.frames_duplicate, 1u);
  ASSERT_NE(resumed.replayed(FrameKind::kPassiveShard, 95, 0), nullptr);
  fs::remove_all(dir);
}

// ---- durable-file helper ------------------------------------------------

TEST(DurableFile, WritesAtomicallyAndBooksFailures) {
  const auto dir = fresh_dir("durable_file");
  const Bytes bytes = {1, 2, 3, 4, 5};
  const auto path = (dir / "blob.bin").string();
  EXPECT_TRUE(tls::study::write_file_durable(path, bytes));
  const auto text = slurp(path);
  EXPECT_EQ(Bytes(text.begin(), text.end()), bytes);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  JournalErrorTaxonomy errors;
  EXPECT_FALSE(tls::study::write_file_durable(
      (dir / "no_such_subdir" / "blob.bin").string(), bytes, &errors));
  EXPECT_GT(errors.failures(), 0u);
  fs::remove_all(dir);
}

// ---- study-level group-fault soak ---------------------------------------

TEST(JournalStudy, GroupFaultSoakNeverChangesBytes) {
  // Hostile segment store: most committed groups are torn, bit-flipped,
  // truncated, or get a stale index entry. Neither the soaked run nor a
  // resume over the damaged journal may change one exported byte — the
  // damage only costs recompute on resume.
  const auto ckpt = fresh_dir("journal_group_soak");
  tls::study::StudyOptions opts;
  opts.connections_per_month = 300;
  opts.full_catalog = false;
  opts.window = {tls::core::Month(2015, 1), tls::core::Month(2015, 6)};
  opts.journal_group_frames = 2;  // many groups -> many fault rolls
  auto plain = opts;
  tls::study::LongitudinalStudy reference(plain);
  std::string ref_csv;
  for (const auto& chart :
       {reference.figure1_versions(), reference.figure8_key_exchange()}) {
    ref_csv += tls::analysis::to_csv(chart);
  }

  opts.checkpoint_dir = ckpt.string();
  opts.checkpoint_faults = tls::faults::FaultConfig::groups_only(0.9);
  {
    tls::study::LongitudinalStudy soaked(opts);
    std::string soaked_csv;
    for (const auto& chart :
         {soaked.figure1_versions(), soaked.figure8_key_exchange()}) {
      soaked_csv += tls::analysis::to_csv(chart);
    }
    EXPECT_EQ(soaked_csv, ref_csv);
  }
  auto ropts = opts;
  ropts.resume = true;
  ropts.checkpoint_faults = {};  // repair pass journals cleanly
  tls::study::LongitudinalStudy resumed(ropts);
  std::string resumed_csv;
  for (const auto& chart :
       {resumed.figure1_versions(), resumed.figure8_key_exchange()}) {
    resumed_csv += tls::analysis::to_csv(chart);
  }
  EXPECT_EQ(resumed_csv, ref_csv);
  const auto report = resumed.recovery();
  EXPECT_TRUE(report.resumed);
  // At a 90% group-fault rate the damage must actually land somewhere.
  EXPECT_GT(report.groups_torn + report.torn_bytes + report.index_stale +
                report.tasks_recomputed,
            0u);
  fs::remove_all(ckpt);
}

}  // namespace
