#include <gtest/gtest.h>

#include <numeric>

#include "population/market.hpp"

namespace tls::population {
namespace {

using tls::core::Date;
using tls::core::Month;

TEST(UpdateLag, MonotoneNondecreasing) {
  const UpdateLagModel lag{3.0, 0.1, 40.0};
  double prev = 0;
  for (double a = 0; a < 120; a += 0.5) {
    const double f = lag.updated_fraction(a);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_EQ(lag.updated_fraction(-1), 0.0);
  EXPECT_EQ(lag.updated_fraction(0), 0.0);
}

TEST(UpdateLag, HalfLifeSemantics) {
  const UpdateLagModel lag{4.0, 0.0, 1e9};
  EXPECT_NEAR(lag.updated_fraction(4.0), 0.5, 1e-9);
  EXPECT_NEAR(lag.updated_fraction(8.0), 0.75, 1e-9);
}

TEST(UpdateLag, RetirementDrainsAbandonedAtom) {
  const UpdateLagModel lag{2.0, 0.5, 10.0};
  // After many retirement half-lives nearly everyone has moved on.
  EXPECT_GT(lag.updated_fraction(100.0), 0.99);
  // At moderate age the abandoned half lags behind.
  EXPECT_LT(lag.updated_fraction(10.0), 0.80);
}

tls::clients::ClientProfile three_version_profile() {
  tls::clients::ClientProfile p{"P", tls::fp::SoftwareClass::kBrowser, {}};
  for (const auto& [label, date] :
       std::initializer_list<std::pair<const char*, Date>>{
           {"1", Date(2013, 1, 15)},
           {"2", Date(2014, 1, 15)},
           {"3", Date(2016, 1, 15)}}) {
    tls::clients::ClientConfig c;
    c.version_label = label;
    c.release = date;
    c.cipher_suites = {0x002f};
    p.versions.push_back(c);
  }
  return p;
}

TEST(VersionShares, ZeroBeforeFirstRelease) {
  const auto p = three_version_profile();
  const auto shares = version_shares(p, Month(2012, 6), UpdateLagModel{});
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), 0.0), 0.0);
}

TEST(VersionShares, SumToOneAfterRelease) {
  const auto p = three_version_profile();
  for (const Month m : {Month(2013, 2), Month(2014, 6), Month(2017, 1)}) {
    const auto shares = version_shares(p, m, UpdateLagModel{2.0, 0.1, 40});
    const double sum = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << m.to_string();
  }
}

TEST(VersionShares, NewestVersionGainsOverTime) {
  const auto p = three_version_profile();
  const UpdateLagModel lag{2.0, 0.05, 40};
  const auto early = version_shares(p, Month(2016, 2), lag);
  const auto late = version_shares(p, Month(2017, 6), lag);
  EXPECT_GT(late[2], early[2]);
  EXPECT_LT(late[0], early[0] + 1e-12);
}

TEST(VersionShares, AbandonedMassSticksToOldest) {
  const auto p = three_version_profile();
  const UpdateLagModel sticky{1.0, 0.4, 1e9};
  const auto shares = version_shares(p, Month(2017, 6), sticky);
  EXPECT_GT(shares[0], 0.35);  // the abandoned atom
  EXPECT_GT(shares[2], 0.5);
}

TEST(VersionShares, FutureVersionsGetNothing) {
  const auto p = three_version_profile();
  const auto shares = version_shares(p, Month(2015, 6), UpdateLagModel{});
  EXPECT_EQ(shares[2], 0.0);
  EXPECT_GT(shares[1], 0.0);
}

TEST(Market, StandardBuildsAgainstCoreCatalog) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = MarketModel::standard(catalog);
  EXPECT_GT(market.entries().size(), 30u);
  for (const auto& e : market.entries()) {
    ASSERT_NE(e.profile, nullptr);
    EXPECT_GE(e.traffic_share.at(Month(2015, 1)), 0.0);
  }
}

TEST(Market, SampleReturnsReleasedConfigs) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = MarketModel::standard(catalog);
  tls::core::Rng rng(21);
  for (int i = 0; i < 3000; ++i) {
    const auto pick = market.sample(Month(2014, 6), rng);
    ASSERT_NE(pick.entry, nullptr);
    ASSERT_NE(pick.config, nullptr);
    EXPECT_LE(pick.config->release, Date(2014, 7, 1));
  }
}

TEST(Market, DestinationsRoutedClientsPresent) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = MarketModel::standard(catalog);
  bool grid = false, nagios = false, interwise = false, splunk = false;
  for (const auto& e : market.entries()) {
    grid = grid || e.destination == "grid";
    nagios = nagios || e.destination == "nagios";
    interwise = interwise || e.destination == "interwise";
    splunk = splunk || e.destination == "splunk";
  }
  EXPECT_TRUE(grid);
  EXPECT_TRUE(nagios);
  EXPECT_TRUE(interwise);
  EXPECT_TRUE(splunk);
}

}  // namespace
}  // namespace tls::population
