#include <gtest/gtest.h>

#include "fingerprint/md5.hpp"

namespace tls::fp {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012"
                     "3456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex("1234567890123456789012345678901234567890123456789012345"
                     "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string text =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in the incremental interface.";
  for (std::size_t chunk = 1; chunk <= 70; chunk += 7) {
    Md5 h;
    for (std::size_t i = 0; i < text.size(); i += chunk) {
      h.update(std::string_view(text).substr(i, chunk));
    }
    EXPECT_EQ(to_hex(h.digest()), Md5::hex(text)) << "chunk=" << chunk;
  }
}

TEST(Md5, BlockBoundaryLengths) {
  // 55/56/57 and 63/64/65 bytes exercise the padding edge cases.
  for (const std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string a(n, 'x');
    Md5 h;
    h.update(a);
    // Compare against one-shot of the same content (self-consistency).
    EXPECT_EQ(to_hex(h.digest()), Md5::hex(a)) << n;
  }
  // Known value for 64 'a' characters.
  EXPECT_EQ(Md5::hex(std::string(64, 'a')),
            "014842d480b571495a4a0363793f7367");
}

TEST(Md5, UpdateAfterDigestThrows) {
  Md5 h;
  h.update("x");
  h.digest();
  EXPECT_THROW(h.update("y"), std::logic_error);
  EXPECT_THROW(h.digest(), std::logic_error);
}

TEST(Md5, ToHexFormatting) {
  const std::uint8_t bytes[] = {0x00, 0xff, 0x0a};
  EXPECT_EQ(to_hex(bytes), "00ff0a");
}

}  // namespace
}  // namespace tls::fp
