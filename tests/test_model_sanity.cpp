// Whole-model sanity: the population weights are meant to be (approximate)
// shares. If someone edits an anchor and the totals drift far from 1, every
// percentage in the study silently re-normalizes against a different base —
// these tests bound that drift.
#include <gtest/gtest.h>

#include "clients/catalog.hpp"
#include "population/market.hpp"
#include "servers/population.hpp"

namespace {

using tls::core::Month;

TEST(ModelSanity, MarketTrafficSharesSumNearOne) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = tls::population::MarketModel::standard(catalog);
  for (Month m(2012, 6); m <= Month(2018, 4); m += 6) {
    double total = 0;
    for (const auto& e : market.entries()) total += e.traffic_share.at(m);
    EXPECT_GT(total, 0.75) << m.to_string();
    EXPECT_LT(total, 1.35) << m.to_string();
  }
}

TEST(ModelSanity, ServerTrafficSharesSumNearOne) {
  const auto pop = tls::servers::ServerPopulation::standard();
  for (Month m(2012, 6); m <= Month(2018, 4); m += 6) {
    double total = 0;
    for (const auto& s : pop.segments()) {
      if (!s.special_destination) total += s.traffic_share.at(m);
    }
    EXPECT_GT(total, 0.75) << m.to_string();
    EXPECT_LT(total, 1.45) << m.to_string();
  }
}

TEST(ModelSanity, ServerHostSharesSumNearOneInScanWindow) {
  const auto pop = tls::servers::ServerPopulation::standard();
  for (Month m(2015, 8); m <= Month(2018, 5); m += 3) {
    double total = 0;
    for (const auto& s : pop.segments()) total += s.host_share.at(m);
    EXPECT_GT(total, 0.8) << m.to_string();
    EXPECT_LT(total, 1.2) << m.to_string();
  }
}

TEST(ModelSanity, NoNegativeShares) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = tls::population::MarketModel::standard(catalog);
  const auto pop = tls::servers::ServerPopulation::standard();
  for (Month m(2012, 1); m <= Month(2018, 5); ++m) {
    for (const auto& e : market.entries()) {
      ASSERT_GE(e.traffic_share.at(m), 0.0) << e.profile->name;
    }
    for (const auto& s : pop.segments()) {
      ASSERT_GE(s.traffic_share.at(m), 0.0) << s.name;
      ASSERT_GE(s.host_share.at(m), 0.0) << s.name;
      ASSERT_GE(s.heartbleed_unpatched.at(m), 0.0) << s.name;
      ASSERT_LE(s.heartbleed_unpatched.at(m), 1.0) << s.name;
    }
  }
}

TEST(ModelSanity, MarketEntriesAreUniqueProfiles) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = tls::population::MarketModel::standard(catalog);
  std::set<const tls::clients::ClientProfile*> seen;
  for (const auto& e : market.entries()) {
    EXPECT_TRUE(seen.insert(e.profile).second)
        << "duplicate market entry: " << e.profile->name;
  }
}

TEST(ModelSanity, SpecialDestinationsAllRoutable) {
  // Every destination key used by the market must match at least one
  // special segment (TrafficGenerator::route throws otherwise).
  const auto catalog = tls::clients::Catalog::core_only();
  const auto market = tls::population::MarketModel::standard(catalog);
  const auto pop = tls::servers::ServerPopulation::standard();
  for (const auto& e : market.entries()) {
    if (e.destination.empty()) continue;
    bool found = false;
    for (const auto& s : pop.segments()) {
      found = found || (s.special_destination &&
                        s.name.starts_with(e.destination));
    }
    EXPECT_TRUE(found) << e.destination;
  }
}

}  // namespace
