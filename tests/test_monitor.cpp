#include <gtest/gtest.h>

#include "notary/monitor.hpp"
#include "wire/server_key_exchange.hpp"

namespace tls::notary {
namespace {

using tls::core::Date;
using tls::core::Month;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

ClientHello client_hello(std::vector<std::uint16_t> suites,
                         bool heartbeat = false) {
  ClientHello ch;
  ch.legacy_version = 0x0303;
  ch.cipher_suites = std::move(suites);
  const std::uint16_t groups[] = {29, 23};
  ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  if (heartbeat) ch.extensions.push_back(tls::wire::make_heartbeat(1));
  return ch;
}

ServerHello server_hello(std::uint16_t suite, std::uint16_t version = 0x0303,
                         bool heartbeat = false) {
  ServerHello sh;
  sh.legacy_version = version;
  sh.cipher_suite = suite;
  if (heartbeat) sh.extensions.push_back(tls::wire::make_heartbeat(1));
  return sh;
}

void feed(PassiveMonitor& mon, Month m, const ClientHello& ch,
          const ServerHello& sh, bool success = true,
          std::span<const std::uint8_t> ske = {}) {
  mon.observe_wire(m, m.first_day(), ch.serialize_record(),
                   sh.serialize_record(), ske, success);
}

TEST(Monitor, CountsNegotiatedClassesAndVersions) {
  PassiveMonitor mon;
  const Month m(2015, 6);
  feed(mon, m, client_hello({0xc02f, 0x0005}), server_hello(0xc02f));
  feed(mon, m, client_hello({0xc013, 0x0005}), server_hello(0x0005));
  const auto* s = mon.month(m);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total, 2u);
  EXPECT_EQ(s->successful, 2u);
  EXPECT_EQ(s->negotiated_class_count(tls::core::CipherClass::kAead), 1u);
  EXPECT_EQ(s->negotiated_class_count(tls::core::CipherClass::kRc4), 1u);
  EXPECT_EQ(s->negotiated_version_count(0x0303), 2u);
}

TEST(Monitor, AdvertisedFlagsPerConnection) {
  PassiveMonitor mon;
  const Month m(2015, 6);
  feed(mon, m, client_hello({0xc02f, 0x0005, 0x000a, 0x0009, 0x0003, 0x0034,
                             0x0002}),
       server_hello(0xc02f));
  const auto* s = mon.month(m);
  EXPECT_EQ(s->adv_aead, 1u);
  EXPECT_EQ(s->adv_rc4, 1u);
  EXPECT_EQ(s->adv_3des, 1u);
  EXPECT_EQ(s->adv_des, 1u);
  EXPECT_EQ(s->adv_export, 1u);
  EXPECT_EQ(s->adv_anon, 1u);
  EXPECT_EQ(s->adv_null, 1u);
  EXPECT_EQ(s->adv_cbc, 1u);  // 0x000a is CBC-mode
  EXPECT_EQ(s->adv_fs, 1u);
}

TEST(Monitor, FailureCountsAndNoNegotiation) {
  PassiveMonitor mon;
  const Month m(2015, 6);
  mon.observe_wire(m, m.first_day(),
                   client_hello({0xc02f}).serialize_record(), {}, {}, false);
  const auto* s = mon.month(m);
  EXPECT_EQ(s->total, 1u);
  EXPECT_EQ(s->failures, 1u);
  EXPECT_EQ(s->successful, 0u);
  EXPECT_TRUE(s->negotiated_version().empty());
}

TEST(Monitor, MalformedClientHelloCounted) {
  PassiveMonitor mon;
  const std::uint8_t garbage[] = {22, 3, 1, 0, 2, 1, 0};
  mon.observe_wire(Month(2015, 6), Date(2015, 6, 1), garbage, {}, {}, true);
  EXPECT_EQ(mon.malformed_hellos(), 1u);
  EXPECT_EQ(mon.total_connections(), 0u);
}

TEST(Monitor, SpecViolationDetectedFromWire) {
  PassiveMonitor mon;
  const Month m(2015, 6);
  // Server chose 0x0003, never offered.
  feed(mon, m, client_hello({0x0005}), server_hello(0x0003, 0x0301), true);
  const auto* s = mon.month(m);
  EXPECT_EQ(s->spec_violations, 1u);
  EXPECT_EQ(s->negotiated_export, 1u);
}

TEST(Monitor, HeartbeatAccounting) {
  PassiveMonitor mon;
  const Month m(2015, 6);
  feed(mon, m, client_hello({0xc02f}, true), server_hello(0xc02f, 0x0303, true));
  feed(mon, m, client_hello({0xc02f}, true), server_hello(0xc02f));
  feed(mon, m, client_hello({0xc02f}), server_hello(0xc02f));
  const auto* s = mon.month(m);
  EXPECT_EQ(s->heartbeat_offered, 2u);
  EXPECT_EQ(s->heartbeat_negotiated, 1u);
}

TEST(Monitor, Tls13AccountingViaSupportedVersions) {
  PassiveMonitor mon;
  const Month m(2018, 4);
  auto ch = client_hello({0x1301, 0xc02f});
  const std::uint16_t versions[] = {0x7e02, 0x0303};
  ch.extensions.push_back(tls::wire::make_supported_versions_client(versions));
  auto sh = server_hello(0x1301);
  sh.extensions.push_back(tls::wire::make_supported_versions_server(0x7e02));
  sh.extensions.push_back(tls::wire::make_key_share_server(29));
  feed(mon, m, ch, sh);
  const auto* s = mon.month(m);
  EXPECT_EQ(s->adv_tls13, 1u);
  EXPECT_EQ(s->adv_tls13_version_count(0x7e02), 1u);
  EXPECT_EQ(s->negotiated_tls13, 1u);
  EXPECT_EQ(s->negotiated_version_count(0x7e02), 1u);
  EXPECT_EQ(s->negotiated_group_count(29), 1u);
}

TEST(Monitor, CurveFromServerKeyExchange) {
  PassiveMonitor mon;
  const Month m(2016, 6);
  const auto ske =
      tls::wire::EcdheServerKeyExchange::stub(24).serialize_record(0x0303);
  feed(mon, m, client_hello({0xc02f}), server_hello(0xc02f), true, ske);
  const auto* s = mon.month(m);
  EXPECT_EQ(s->negotiated_group_count(24), 1u);
}

TEST(Monitor, FingerprintsOnlyAfterFeatureIntroduction) {
  PassiveMonitor mon;
  feed(mon, Month(2013, 6), client_hello({0xc02f}), server_hello(0xc02f));
  EXPECT_EQ(mon.fingerprintable_connections(), 0u);
  EXPECT_EQ(mon.durations().size(), 0u);
  feed(mon, Month(2015, 6), client_hello({0xc02f}), server_hello(0xc02f));
  EXPECT_EQ(mon.fingerprintable_connections(), 1u);
  EXPECT_EQ(mon.durations().size(), 1u);
  EXPECT_EQ(PassiveMonitor::fp_start(), Month(2014, 10));
}

TEST(Monitor, FingerprintFlagsPerMonth) {
  PassiveMonitor mon;
  const Month m(2016, 2);
  feed(mon, m, client_hello({0xc02f, 0x0005}), server_hello(0xc02f));
  feed(mon, m, client_hello({0x002f}), server_hello(0x002f));
  const auto* s = mon.month(m);
  ASSERT_EQ(s->fingerprints.size(), 2u);
  int rc4_fps = 0, aead_fps = 0, cbc_fps = 0;
  for (const auto& [hash, flags] : s->fingerprints) {
    rc4_fps += (flags & kFpRc4) != 0;
    aead_fps += (flags & kFpAead) != 0;
    cbc_fps += (flags & kFpCbc) != 0;
  }
  EXPECT_EQ(rc4_fps, 1);
  EXPECT_EQ(aead_fps, 1);
  EXPECT_EQ(cbc_fps, 1);
}

TEST(Monitor, LabeledCoverageByClass) {
  tls::fp::FingerprintDatabase db;
  const auto ch = client_hello({0xc02f, 0x0005});
  const auto hash =
      tls::fp::extract_fingerprint(ClientHello::parse_record(ch.serialize_record()))
          .hash();
  db.add(hash, tls::fp::SoftwareLabel{"TestApp",
                                      tls::fp::SoftwareClass::kBrowser, "1",
                                      "1"});
  PassiveMonitor mon(&db);
  feed(mon, Month(2016, 1), ch, server_hello(0xc02f));
  feed(mon, Month(2016, 1), client_hello({0x002f}), server_hello(0x002f));
  EXPECT_EQ(mon.labeled_connections(), 1u);
  EXPECT_EQ(mon.labeled_connections_by_class().at(
                tls::fp::SoftwareClass::kBrowser),
            1u);
  EXPECT_EQ(mon.fingerprintable_connections(), 2u);
}

TEST(Monitor, Sslv2Accounting) {
  PassiveMonitor mon;
  mon.observe_sslv2(Month(2018, 2));
  const auto* s = mon.month(Month(2018, 2));
  EXPECT_EQ(s->sslv2_connections, 1u);
  EXPECT_EQ(s->negotiated_version_count(0x0002), 1u);
  EXPECT_EQ(s->successful, 1u);
}

TEST(Monitor, ResumptionDetectedFromSessionIdEcho) {
  PassiveMonitor mon;
  const Month m(2015, 6);
  auto ch = client_hello({0x002f});
  ch.session_id.assign(32, 0x33);
  auto sh = server_hello(0x002f, 0x0303);
  sh.session_id = ch.session_id;
  feed(mon, m, ch, sh);
  // Fresh server id: not resumed.
  auto sh2 = server_hello(0x002f, 0x0303);
  sh2.session_id.assign(32, 0x44);
  feed(mon, m, ch, sh2);
  // TLS 1.3 compat echo: not resumed.
  auto ch13 = client_hello({0x1301});
  ch13.session_id.assign(32, 0x55);
  const std::uint16_t versions[] = {0x7e02, 0x0303};
  ch13.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  auto sh13 = server_hello(0x1301);
  sh13.session_id = ch13.session_id;
  sh13.extensions.push_back(
      tls::wire::make_supported_versions_server(0x7e02));
  feed(mon, m, ch13, sh13);
  EXPECT_EQ(mon.month(m)->resumed, 1u);
}

TEST(Monitor, RelativePositions) {
  PassiveMonitor mon;
  const Month m(2016, 6);
  // AEAD at index 0 of 4, RC4 at 2 of 4, 3DES at 3 of 4.
  feed(mon, m, client_hello({0xc02f, 0x002f, 0x0005, 0x000a}),
       server_hello(0xc02f));
  const auto* s = mon.month(m);
  EXPECT_DOUBLE_EQ(s->pos_aead.average(), 0.0);
  EXPECT_DOUBLE_EQ(s->pos_cbc.average(), 0.25);
  EXPECT_DOUBLE_EQ(s->pos_rc4.average(), 0.5);
  EXPECT_DOUBLE_EQ(s->pos_3des.average(), 0.75);
  EXPECT_EQ(s->pos_des.n, 0u);
}

TEST(Monitor, PositionSkipsGreaseAndScsv) {
  PassiveMonitor mon;
  const Month m(2016, 6);
  feed(mon, m,
       client_hello({0x8a8a /*GREASE*/, 0xc02f, 0x00ff /*SCSV*/, 0x0005}),
       server_hello(0xc02f));
  const auto* s = mon.month(m);
  // Effective list: [c02f, 0005] -> AEAD at 0/2, RC4 at 1/2.
  EXPECT_DOUBLE_EQ(s->pos_aead.average(), 0.0);
  EXPECT_DOUBLE_EQ(s->pos_rc4.average(), 0.5);
}

}  // namespace
}  // namespace tls::notary
