#include <gtest/gtest.h>

#include "handshake/negotiate.hpp"
#include "wire/extension_codec.hpp"

namespace tls::handshake {
namespace {

using tls::servers::ServerConfig;
using tls::servers::ServerQuirk;
using tls::wire::ClientHello;

ClientHello hello_with(std::vector<std::uint16_t> suites,
                       std::uint16_t version = 0x0303,
                       std::vector<std::uint16_t> groups = {29, 23, 24}) {
  ClientHello ch;
  ch.legacy_version = version;
  ch.cipher_suites = std::move(suites);
  if (!groups.empty()) {
    ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  }
  return ch;
}

ServerConfig server_with(std::vector<std::uint16_t> prefs,
                         std::uint16_t max = 0x0303,
                         std::uint16_t min = 0x0300) {
  ServerConfig c;
  c.max_version = max;
  c.min_version = min;
  c.cipher_preference = std::move(prefs);
  return c;
}

tls::core::Rng rng_fixture() { return tls::core::Rng(77); }

TEST(Negotiate, VersionIsMinOfClientAndServer) {
  auto rng = rng_fixture();
  const auto r = negotiate(hello_with({0x002f}, 0x0301),
                           server_with({0x002f}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_version, 0x0301);

  const auto r2 = negotiate(hello_with({0x002f}, 0x0303),
                            server_with({0x002f}, 0x0301), rng);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r2.negotiated_version, 0x0301);
}

TEST(Negotiate, FailsBelowServerMinimum) {
  auto rng = rng_fixture();
  const auto r = negotiate(hello_with({0x002f}, 0x0301),
                           server_with({0x002f}, 0x0303, 0x0303), rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kNoCommonVersion);
  EXPECT_FALSE(r.server_hello.has_value());
}

TEST(Negotiate, ServerPreferenceOrderWins) {
  auto rng = rng_fixture();
  // Client prefers GCM; server prefers RC4 (the bankmellat case, §5.3).
  const auto r = negotiate(hello_with({0xc02f, 0x0005}),
                           server_with({0x0005, 0xc02f}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0x0005);
}

TEST(Negotiate, ClientPreferenceHonoredWhenConfigured) {
  auto rng = rng_fixture();
  auto server = server_with({0x0005, 0xc02f});
  server.prefer_server_order = false;
  const auto r = negotiate(hello_with({0xc02f, 0x0005}), server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0xc02f);
}

TEST(Negotiate, NoCommonCipherFails) {
  auto rng = rng_fixture();
  const auto r =
      negotiate(hello_with({0xc02f}), server_with({0x0005}), rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kNoCommonCipher);
}

TEST(Negotiate, AeadRequiresTls12) {
  auto rng = rng_fixture();
  // TLS 1.0 client offering GCM (nonsensical but possible): GCM must not
  // be selected at 1.0; fall through to CBC.
  const auto r = negotiate(hello_with({0xc02f, 0x002f}, 0x0301),
                           server_with({0xc02f, 0x002f}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_version, 0x0301);
  EXPECT_EQ(r.negotiated_cipher, 0x002f);
}

TEST(Negotiate, Sha256SuitesRequireTls12) {
  auto rng = rng_fixture();
  const auto r = negotiate(hello_with({0x003c, 0x002f}, 0x0302),
                           server_with({0x003c, 0x002f}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0x002f);
}

TEST(Negotiate, EcdheRequiresMutualGroup) {
  auto rng = rng_fixture();
  // Client supports only x25519; server only P-256: EC suites unusable.
  auto server = server_with({0xc02f, 0x009c});
  server.groups = {23};
  const auto r = negotiate(hello_with({0xc02f, 0x009c}, 0x0303, {29}),
                           server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0x009c);
  EXPECT_EQ(r.negotiated_group, 0);
}

TEST(Negotiate, GroupSelectionFollowsServerPreference) {
  auto rng = rng_fixture();
  auto server = server_with({0xc02f});
  server.groups = {29, 23};
  const auto r =
      negotiate(hello_with({0xc02f}, 0x0303, {23, 29}), server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_group, 29);
}

TEST(Negotiate, MissingGroupsExtensionImpliesDefaults) {
  auto rng = rng_fixture();
  auto server = server_with({0xc013});
  server.groups = {23, 24};
  const auto r = negotiate(hello_with({0xc013}, 0x0303, {}), server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_group, 23);
}

TEST(Negotiate, GreaseSuitesNeverSelected) {
  auto rng = rng_fixture();
  const auto r = negotiate(hello_with({0x5a5a, 0x002f}),
                           server_with({0x5a5a, 0x002f}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0x002f);
}

TEST(Negotiate, ScsvNeverSelected) {
  auto rng = rng_fixture();
  const auto r = negotiate(hello_with({0x00ff, 0x002f}),
                           server_with({0x00ff, 0x002f}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0x002f);
}

TEST(Negotiate, NullWithNullNullIsSelectable) {
  auto rng = rng_fixture();
  const auto r = negotiate(hello_with({0x0000, 0x0034}),
                           server_with({0x0000, 0x0034}), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_cipher, 0x0000);
}

TEST(Negotiate, Tls13ViaSupportedVersions) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x1301, 0xc02f});
  const std::uint16_t versions[] = {0x7a7a /*GREASE*/, 0x7e02, 0x0303};
  hello.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  auto server = server_with({0x1301, 0xc02f});
  server.tls13_versions = {0x7e02, 0x7f12};
  const auto r = negotiate(hello, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_version, 0x7e02);
  EXPECT_EQ(r.negotiated_cipher, 0x1301);
  EXPECT_NE(r.negotiated_group, 0);
  ASSERT_TRUE(r.server_hello.has_value());
  EXPECT_EQ(r.server_hello->negotiated_version(), 0x7e02);
  EXPECT_TRUE(r.server_hello->key_share_group().has_value());
}

TEST(Negotiate, Tls13PicksHighestMutualDraft) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x1301});
  const std::uint16_t versions[] = {0x7f1c, 0x7f12, 0x0303};
  hello.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  auto server = server_with({0x1301});
  server.tls13_versions = {0x7f12, 0x7f1c};
  const auto r = negotiate(hello, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_version, 0x7f1c);  // draft-28 > draft-18
}

TEST(Negotiate, Tls13FallsBackTo12WithoutMutualDraft) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x1301, 0xc02f});
  const std::uint16_t versions[] = {0x7f12, 0x0303};
  hello.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  auto server = server_with({0x1301, 0xc02f});
  server.tls13_versions = {0x7e02};  // disjoint draft sets
  const auto r = negotiate(hello, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.negotiated_version, 0x0303);
  EXPECT_EQ(r.negotiated_cipher, 0xc02f);
}

TEST(Negotiate, Tls13SuitesUnusableBelow13) {
  auto rng = rng_fixture();
  const auto r =
      negotiate(hello_with({0x1301}), server_with({0x1301}), rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kNoCommonCipher);
}

TEST(Negotiate, QuirkExportRc4RejectedByStandardClient) {
  auto rng = rng_fixture();
  auto server = server_with({0x0003, 0x0005});
  server.quirk = ServerQuirk::kChooseExportRc4Unoffered;
  const auto r = negotiate(hello_with({0x0005, 0x002f}, 0x0301), server, rng);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.spec_violation);
  EXPECT_EQ(r.failure, FailureReason::kClientRejectedUnofferedSuite);
  ASSERT_TRUE(r.server_hello.has_value());
  EXPECT_EQ(r.server_hello->cipher_suite, 0x0003);
}

TEST(Negotiate, QuirkAcceptedByTolerantClient) {
  // The Interwise population completes such sessions (§5.5).
  auto rng = rng_fixture();
  auto server = server_with({0x0003});
  server.quirk = ServerQuirk::kChooseExportRc4Unoffered;
  NegotiateOptions opts;
  opts.accept_unoffered_suite = true;
  const auto r =
      negotiate(hello_with({0x0005}, 0x0301), server, rng, opts);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.spec_violation);
  EXPECT_EQ(r.negotiated_cipher, 0x0003);
}

TEST(Negotiate, QuirkSkippedWhenClientactuallyOffers) {
  auto rng = rng_fixture();
  auto server = server_with({0x0003, 0x0005});
  server.quirk = ServerQuirk::kChooseExportRc4Unoffered;
  // Client that DOES offer the export suite: normal selection, no violation.
  const auto r = negotiate(hello_with({0x0003, 0x0005}, 0x0301), server, rng);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.spec_violation);
  EXPECT_EQ(r.negotiated_cipher, 0x0003);
}

TEST(Negotiate, GostQuirk) {
  auto rng = rng_fixture();
  auto server = server_with({0x0081});
  server.quirk = ServerQuirk::kChooseGostUnoffered;
  const auto r = negotiate(hello_with({0xc02f}), server, rng);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.spec_violation);
  EXPECT_EQ(r.server_hello->cipher_suite, 0x0081);
}

TEST(Negotiate, HeartbeatEchoedOnlyWhenOfferedAndSupported) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x002f});
  hello.extensions.push_back(tls::wire::make_heartbeat(1));
  auto server = server_with({0x002f});
  server.echo_heartbeat = true;
  auto r = negotiate(hello, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.heartbeat_negotiated);
  EXPECT_TRUE(r.server_hello->heartbeat_mode().has_value());

  server.echo_heartbeat = false;
  r = negotiate(hello, server, rng);
  EXPECT_FALSE(r.heartbeat_negotiated);

  server.echo_heartbeat = true;
  r = negotiate(hello_with({0x002f}), server, rng);  // client didn't offer
  EXPECT_FALSE(r.heartbeat_negotiated);
}

TEST(Negotiate, SessionTicketAndEmsEcho) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x002f});
  hello.extensions.push_back(tls::wire::make_session_ticket());
  hello.extensions.push_back(tls::wire::make_extended_master_secret());
  auto server = server_with({0x002f});
  server.supports_ems = true;
  const auto r = negotiate(hello, server, rng);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.server_hello->has_extension(
      tls::core::ExtensionType::kSessionTicket));
  EXPECT_TRUE(r.server_hello->has_extension(
      tls::core::ExtensionType::kExtendedMasterSecret));
}

TEST(Negotiate, ResumptionEchoesSessionId) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x002f});
  hello.session_id.assign(32, 0x11);
  auto server = server_with({0x002f});
  server.resumption_rate = 1.0;
  NegotiateOptions opts;
  opts.attempt_resumption = true;
  const auto r = negotiate(hello, server, rng, opts);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.server_hello->session_id, hello.session_id);

  // Rate 0: fresh session id, no resumption.
  server.resumption_rate = 0.0;
  const auto r2 = negotiate(hello, server, rng, opts);
  ASSERT_TRUE(r2.success);
  EXPECT_FALSE(r2.resumed);
  EXPECT_NE(r2.server_hello->session_id, hello.session_id);
}

TEST(Negotiate, Tls13SessionIdEchoIsNotResumption) {
  auto rng = rng_fixture();
  auto hello = hello_with({0x1301});
  hello.session_id.assign(32, 0x22);
  const std::uint16_t versions[] = {0x0304, 0x0303};
  hello.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  auto server = server_with({0x1301});
  server.tls13_versions = {0x0304};
  server.resumption_rate = 1.0;
  NegotiateOptions opts;
  opts.attempt_resumption = true;
  const auto r = negotiate(hello, server, rng, opts);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.server_hello->session_id, hello.session_id);  // compat echo
  EXPECT_FALSE(r.resumed);
}

TEST(SuiteAllowed, VersionTable) {
  const auto* gcm = tls::core::find_cipher_suite(std::uint16_t{0xc02f});
  const auto* cbc = tls::core::find_cipher_suite(std::uint16_t{0x002f});
  const auto* t13 = tls::core::find_cipher_suite(std::uint16_t{0x1301});
  EXPECT_FALSE(suite_allowed_at_version(*gcm, 0x0301));
  EXPECT_TRUE(suite_allowed_at_version(*gcm, 0x0303));
  EXPECT_TRUE(suite_allowed_at_version(*cbc, 0x0300));
  EXPECT_TRUE(suite_allowed_at_version(*cbc, 0x0303));
  EXPECT_FALSE(suite_allowed_at_version(*cbc, 0x7f1c));
  EXPECT_TRUE(suite_allowed_at_version(*t13, 0x7f1c));
  EXPECT_TRUE(suite_allowed_at_version(*t13, 0x7e02));
  EXPECT_FALSE(suite_allowed_at_version(*t13, 0x0303));
}

}  // namespace
}  // namespace tls::handshake
