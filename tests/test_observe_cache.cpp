// ObserveCache correctness: collision verification, fault bypass,
// deterministic eviction, fingerprint-era upgrades, and — the contract that
// matters — bit-identical monitor state with the cache on, off, and with
// the struct-reuse fast path on and off.
#include <gtest/gtest.h>

#include "clients/catalog.hpp"
#include "faults/injector.hpp"
#include "notary/monitor.hpp"
#include "population/market.hpp"
#include "population/traffic.hpp"
#include "servers/population.hpp"

namespace tls::notary {
namespace {

using tls::core::Date;
using tls::core::Month;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

ClientHello client_hello(std::vector<std::uint16_t> suites) {
  ClientHello ch;
  ch.legacy_version = 0x0303;
  ch.cipher_suites = std::move(suites);
  const std::uint16_t groups[] = {29, 23};
  ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  return ch;
}

ServerHello server_hello(std::uint16_t suite) {
  ServerHello sh;
  sh.legacy_version = 0x0303;
  sh.cipher_suite = suite;
  return sh;
}

std::uint64_t degenerate_hash(std::span<const std::uint8_t>) { return 42; }

void expect_stats_equal(const PassiveMonitor& a, const PassiveMonitor& b) {
  EXPECT_EQ(a.total_connections(), b.total_connections());
  EXPECT_EQ(a.fingerprintable_connections(), b.fingerprintable_connections());
  EXPECT_EQ(a.labeled_connections(), b.labeled_connections());
  EXPECT_EQ(a.errors().total(), b.errors().total());
  EXPECT_EQ(a.quarantine().total_pushed(), b.quarantine().total_pushed());
  ASSERT_EQ(a.months().size(), b.months().size());
  for (const auto& [m, sa] : a.months()) {
    const auto* sb = b.month(m);
    ASSERT_NE(sb, nullptr) << m.to_string();
    EXPECT_EQ(sa.total, sb->total) << m.to_string();
    EXPECT_EQ(sa.successful, sb->successful) << m.to_string();
    EXPECT_EQ(sa.failures, sb->failures) << m.to_string();
    EXPECT_EQ(sa.quarantined, sb->quarantined) << m.to_string();
    EXPECT_EQ(sa.spec_violations, sb->spec_violations) << m.to_string();
    EXPECT_EQ(sa.resumed, sb->resumed) << m.to_string();
    EXPECT_EQ(sa.adv_aead, sb->adv_aead) << m.to_string();
    EXPECT_EQ(sa.adv_rc4, sb->adv_rc4) << m.to_string();
    EXPECT_EQ(sa.adv_tls13, sb->adv_tls13) << m.to_string();
    EXPECT_EQ(sa.heartbeat_negotiated, sb->heartbeat_negotiated)
        << m.to_string();
    EXPECT_EQ(sa.parse_errors(), sb->parse_errors()) << m.to_string();
    EXPECT_EQ(sa.negotiated_version(), sb->negotiated_version())
        << m.to_string();
    EXPECT_EQ(sa.negotiated_class(), sb->negotiated_class()) << m.to_string();
    EXPECT_EQ(sa.negotiated_kex(), sb->negotiated_kex()) << m.to_string();
    EXPECT_EQ(sa.negotiated_aead(), sb->negotiated_aead()) << m.to_string();
    EXPECT_EQ(sa.negotiated_group(), sb->negotiated_group()) << m.to_string();
    EXPECT_EQ(sa.adv_tls13_versions(), sb->adv_tls13_versions())
        << m.to_string();
    EXPECT_EQ(sa.alerts(), sb->alerts()) << m.to_string();
    EXPECT_EQ(sa.fingerprints, sb->fingerprints) << m.to_string();
    EXPECT_EQ(sa.pos_aead.sum, sb->pos_aead.sum) << m.to_string();
    EXPECT_EQ(sa.pos_aead.n, sb->pos_aead.n) << m.to_string();
    EXPECT_EQ(sa.pos_cbc.sum, sb->pos_cbc.sum) << m.to_string();
  }
}

TEST(ObserveCache, CollisionOnForcedSharedKeyIsVerifiedAway) {
  ObserveCache cache(16);
  cache.set_hash_for_test(&degenerate_hash);  // every record keys to 42

  ClientHelloFeatures fa, fb;
  std::vector<tls::wire::ParseErrorCode> errors;
  const auto ha = client_hello({0xc02f});
  const auto hb = client_hello({0x0005});
  const auto ra = ha.serialize_record();
  const auto rb = hb.serialize_record();
  build_client_features(ha, nullptr, false, fa, errors);
  ASSERT_TRUE(errors.empty());
  build_client_features(hb, nullptr, false, fb, errors);
  ASSERT_TRUE(errors.empty());

  cache.insert_client(ra, ha, fa);
  // Distinct bytes, same 64-bit key: must be a miss, counted as collision.
  EXPECT_FALSE(cache.find_client(rb, false).has_value());
  EXPECT_EQ(cache.stats().client.collisions, 1u);
  cache.insert_client(rb, hb, fb);

  // Both entries now live on one chain; each lookup returns its own bytes.
  const auto hit_a = cache.find_client(ra, false);
  const auto hit_b = cache.find_client(rb, false);
  ASSERT_TRUE(hit_a.has_value());
  ASSERT_TRUE(hit_b.has_value());
  EXPECT_EQ(hit_a->hello->cipher_suites, ha.cipher_suites);
  EXPECT_EQ(hit_b->hello->cipher_suites, hb.cipher_suites);
  EXPECT_TRUE(hit_a->features->adv_aead);
  EXPECT_TRUE(hit_b->features->adv_rc4);
  EXPECT_EQ(cache.stats().client.hits, 2u);
}

TEST(ObserveCache, MonitorIdenticalUnderForcedCollisions) {
  // Same observation stream through a cache-off monitor and one whose cache
  // funnels every record onto one hash chain.
  PassiveMonitor off, on;
  off.set_observe_cache_capacity(0);
  on.set_observe_cache_hash_for_test(&degenerate_hash);

  const Month m(2016, 3);
  const auto hellos = {client_hello({0xc02f}), client_hello({0x0005}),
                       client_hello({0xc013, 0x000a})};
  for (int round = 0; round < 3; ++round) {
    for (const auto& ch : hellos) {
      const auto cr = ch.serialize_record();
      const auto sr = server_hello(ch.cipher_suites.front()).serialize_record();
      off.observe_wire(m, m.first_day(), cr, sr, {}, true);
      on.observe_wire(m, m.first_day(), cr, sr, {}, true);
    }
  }
  EXPECT_GT(on.observe_cache_stats().client.collisions, 0u);
  EXPECT_GT(on.observe_cache_stats().client.hits, 0u);
  expect_stats_equal(off, on);
}

TEST(ObserveCache, RepeatedRecordsHitAndMatchCacheOff) {
  PassiveMonitor off, on;
  off.set_observe_cache_capacity(0);

  const Month m(2016, 6);
  const auto good = client_hello({0xc02f, 0x0005}).serialize_record();
  const auto sr = server_hello(0xc02f).serialize_record();
  std::vector<std::uint8_t> truncated(good.begin(), good.begin() + 9);

  for (int i = 0; i < 5; ++i) {
    off.observe_wire(m, m.first_day(), good, sr, {}, true);
    on.observe_wire(m, m.first_day(), good, sr, {}, true);
    // Corrupt records re-run the error path every single repetition.
    off.observe_wire(m, m.first_day(), truncated, sr, {}, true);
    on.observe_wire(m, m.first_day(), truncated, sr, {}, true);
  }
  EXPECT_EQ(on.observe_cache_stats().client.hits, 4u);
  EXPECT_EQ(on.observe_cache_stats().server.hits, 4u);
  EXPECT_EQ(on.month(m)->quarantined, 5u);
  expect_stats_equal(off, on);
}

TEST(ObserveCache, FingerprintEraUpgradeOnCachedEntry) {
  PassiveMonitor off, on;
  off.set_observe_cache_capacity(0);

  const auto cr = client_hello({0xc02f}).serialize_record();
  const auto sr = server_hello(0xc02f).serialize_record();
  const Month before(2014, 9);   // pre-fingerprint era
  const Month after(2014, 10);   // first fingerprint month
  for (auto* mon : {&off, &on}) {
    mon->observe_wire(before, before.first_day(), cr, sr, {}, true);
    mon->observe_wire(after, after.first_day(), cr, sr, {}, true);
    mon->observe_wire(after, after.first_day(), cr, sr, {}, true);
  }
  // Pre-era insert, then the era switch forces one rebuild (miss) that
  // upgrades the entry in place, and only the final repeat hits.
  EXPECT_EQ(on.observe_cache_stats().client.hits, 1u);
  EXPECT_EQ(on.fingerprintable_connections(), 2u);
  EXPECT_EQ(on.month(after)->fingerprints.size(), 1u);
  expect_stats_equal(off, on);
}

TEST(ObserveCache, DeterministicFlushEvictionAtCapacity) {
  PassiveMonitor off, on;
  off.set_observe_cache_capacity(0);
  on.set_observe_cache_capacity(4);

  const Month m(2016, 1);
  std::vector<std::vector<std::uint8_t>> records;
  for (std::uint16_t i = 0; i < 12; ++i) {
    auto ch = client_hello({0xc02f});
    ch.random[0] = static_cast<std::uint8_t>(i);  // 12 distinct records
    records.push_back(ch.serialize_record());
  }
  const auto sr = server_hello(0xc02f).serialize_record();
  for (int round = 0; round < 2; ++round) {
    for (const auto& cr : records) {
      off.observe_wire(m, m.first_day(), cr, sr, {}, true);
      on.observe_wire(m, m.first_day(), cr, sr, {}, true);
    }
  }
  const auto& cs = on.observe_cache_stats();
  EXPECT_GT(cs.client.flushes, 0u);
  EXPECT_GT(cs.client.evictions, 0u);
  EXPECT_EQ(cs.client.hits + cs.client.misses, 24u);
  expect_stats_equal(off, on);
}

TEST(ObserveCache, FaultTouchedCapturesBypassTheCache) {
  // An injector that corrupts every capture: the cache must never be
  // consulted or populated, only the bypass counter moves.
  tls::faults::FaultInjector injector(
      tls::faults::FaultConfig::bytes_only(1.0), 7);
  PassiveMonitor mon;
  mon.set_fault_injector(&injector);

  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  tls::population::TrafficGenerator gen(market, servers, 9);
  gen.generate_month(Month(2016, 5), 200,
                     [&](const tls::population::ConnectionEvent& ev) {
                       mon.observe(ev);
                     });
  mon.set_fault_injector(nullptr);

  const auto& cs = mon.observe_cache_stats();
  EXPECT_GT(cs.bypasses, 0u);
  EXPECT_EQ(cs.client.inserts, 0u);
  EXPECT_EQ(cs.client.hits, 0u);
  EXPECT_EQ(cs.server.inserts, 0u);
}

TEST(FastObserve, ByteIdenticalToSerializeParsePath) {
  // Satellite proof for the documented fast path: the struct-reuse route
  // and the serialize→parse route must produce identical monitor state on
  // a real generated stream (resumption ids, fallback dances, TLS 1.3,
  // failed handshakes, SSLv2 — everything the generator emits).
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);

  PassiveMonitor fast, slow;
  fast.set_fast_observe(true);
  slow.set_fast_observe(false);
  // Disable both caches so this isolates the fast path itself.
  fast.set_observe_cache_capacity(0);
  slow.set_observe_cache_capacity(0);

  for (auto* mon : {&fast, &slow}) {
    tls::population::TrafficGenerator gen(market, servers, 4242);
    gen.generate_range({Month(2014, 8), Month(2015, 2)}, 600,
                       [&](const tls::population::ConnectionEvent& ev) {
                         mon->observe(ev);
                       });
  }
  EXPECT_GT(fast.total_connections(), 0u);
  expect_stats_equal(slow, fast);
}

TEST(FastObserve, SpanEntryPointMatchesPerEventObserve) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);

  PassiveMonitor one_by_one, spans;
  tls::population::TrafficGenerator gen_a(market, servers, 77);
  gen_a.generate_month(Month(2015, 6), 500,
                       [&](const tls::population::ConnectionEvent& ev) {
                         one_by_one.observe(ev);
                       });
  tls::population::TrafficGenerator gen_b(market, servers, 77);
  gen_b.generate_month_batched(
      Month(2015, 6), 500, 64,
      [&](std::span<const tls::population::ConnectionEvent> events) {
        spans.observe_span(events);
      });
  expect_stats_equal(one_by_one, spans);
}

}  // namespace
}  // namespace tls::notary
