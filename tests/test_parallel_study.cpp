// Determinism contract of the sharded parallel runner: at a fixed seed,
// every figure accessor and every exported CSV must be byte-identical
// whether the study ran serially (threads = 0) or on a pool (threads = 8),
// with and without fault injection. Plus the merge paths behind it:
// PassiveMonitor::absorb and the per-(month, segment) parallel scanner.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/shard.hpp"
#include "core/study.hpp"
#include "faults/injector.hpp"
#include "notary/monitor.hpp"
#include "population/traffic.hpp"
#include "scan/scanner.hpp"

namespace {

using tls::core::Month;
using tls::core::MonthRange;
using tls::notary::PassiveMonitor;

tls::study::StudyOptions small_options() {
  tls::study::StudyOptions o;
  o.connections_per_month = 1200;
  o.full_catalog = false;
  o.window = {Month(2014, 6), Month(2015, 9)};
  return o;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string chart_csv(tls::study::LongitudinalStudy& study) {
  std::string all;
  for (const auto& chart :
       {study.figure1_versions(), study.figure2_negotiated_classes(),
        study.figure3_advertised_classes(),
        study.figure4_fingerprint_support(),
        study.figure5_relative_positions(), study.figure6_rc4_advertised(),
        study.figure7_weak_advertised(), study.figure8_key_exchange(),
        study.figure9_aead_negotiated(), study.figure10_aead_advertised()}) {
    all += tls::analysis::to_csv(chart);
  }
  return all;
}

void expect_monitors_equal(const PassiveMonitor& a, const PassiveMonitor& b) {
  EXPECT_EQ(a.total_connections(), b.total_connections());
  EXPECT_EQ(a.fingerprintable_connections(), b.fingerprintable_connections());
  EXPECT_EQ(a.labeled_connections(), b.labeled_connections());
  EXPECT_EQ(a.errors().total(), b.errors().total());
  EXPECT_EQ(a.quarantine().total_pushed(), b.quarantine().total_pushed());
  ASSERT_EQ(a.months().size(), b.months().size());
  for (const auto& [m, sa] : a.months()) {
    const auto* sb = b.month(m);
    ASSERT_NE(sb, nullptr) << m.to_string();
    EXPECT_EQ(sa.total, sb->total) << m.to_string();
    EXPECT_EQ(sa.successful, sb->successful) << m.to_string();
    EXPECT_EQ(sa.failures, sb->failures) << m.to_string();
    EXPECT_EQ(sa.quarantined, sb->quarantined) << m.to_string();
    EXPECT_EQ(sa.parse_errors(), sb->parse_errors()) << m.to_string();
    EXPECT_EQ(sa.negotiated_version(), sb->negotiated_version()) << m.to_string();
    EXPECT_EQ(sa.fingerprints, sb->fingerprints) << m.to_string();
    // Bit-identical double accumulators, not just approximately equal.
    EXPECT_EQ(sa.pos_aead.sum, sb->pos_aead.sum) << m.to_string();
    EXPECT_EQ(sa.pos_rc4.n, sb->pos_rc4.n) << m.to_string();
  }
  const auto da = a.durations().summarize();
  const auto db = b.durations().summarize();
  EXPECT_EQ(da.fingerprint_count, db.fingerprint_count);
  EXPECT_EQ(da.total_connections, db.total_connections);
  EXPECT_EQ(da.median_days, db.median_days);
  EXPECT_EQ(da.mean_days, db.mean_days);
  EXPECT_EQ(da.single_day_count, db.single_day_count);
}

TEST(ParallelStudy, FiguresByteIdenticalAcrossThreadCounts) {
  auto opts = small_options();
  tls::study::LongitudinalStudy serial(opts);
  const auto serial_csv = chart_csv(serial);

  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(threads);
    auto popts = opts;
    popts.threads = threads;
    tls::study::LongitudinalStudy parallel(popts);
    EXPECT_EQ(chart_csv(parallel), serial_csv);
    expect_monitors_equal(serial.monitor(), parallel.monitor());
  }
}

TEST(ParallelStudy, FiguresByteIdenticalUnderFaults) {
  auto opts = small_options();
  opts.faults = tls::faults::FaultConfig::uniform(0.10);
  tls::study::LongitudinalStudy serial(opts);
  const auto serial_csv = chart_csv(serial);

  // The injected faults actually bit: some capture was quarantined.
  std::uint64_t quarantined = 0;
  for (const auto& [m, s] : serial.monitor().months()) {
    quarantined += s.quarantined;
  }
  EXPECT_GT(quarantined, 0u);

  auto popts = opts;
  popts.threads = 8;
  tls::study::LongitudinalStudy parallel(popts);
  EXPECT_EQ(chart_csv(parallel), serial_csv);
  expect_monitors_equal(serial.monitor(), parallel.monitor());
}

TEST(ParallelStudy, FastObserveUnderFaultsByteIdentical) {
  // The struct-reuse fast path now extends to fault-injected runs: the
  // fault kind is rolled *before* serialization, so a kNone roll can skip
  // the byte path entirely without shifting the injector's RNG stream.
  // Contract: at a 10% fault rate, fast path on vs off is byte-identical.
  auto base = small_options();
  base.connections_per_month = 800;
  base.faults = tls::faults::FaultConfig::uniform(0.10);

  auto ref_opts = base;
  ref_opts.fast_observe = false;
  tls::study::LongitudinalStudy ref(ref_opts);
  const auto ref_csv = chart_csv(ref);

  // The faults actually bit in the reference run.
  std::uint64_t quarantined = 0;
  for (const auto& [m, s] : ref.monitor().months()) quarantined += s.quarantined;
  EXPECT_GT(quarantined, 0u);

  for (const unsigned threads : {0u, 8u}) {
    SCOPED_TRACE(threads);
    auto o = base;
    o.threads = threads;
    o.fast_observe = true;
    tls::study::LongitudinalStudy fast(o);
    EXPECT_EQ(chart_csv(fast), ref_csv);
    expect_monitors_equal(ref.monitor(), fast.monitor());
  }
}

TEST(ParallelStudy, CacheOnOffByteIdenticalAcrossThreadsAndFaults) {
  // The ObserveCache and the struct-reuse fast path are pure accelerators:
  // every figure CSV must be byte-identical with the cache on or off, at
  // every thread count, with and without fault injection. The reference
  // run disables both accelerators (pure serialize→parse byte path).
  for (const double fault_rate : {0.0, 0.10}) {
    SCOPED_TRACE(fault_rate);
    auto base = small_options();
    base.connections_per_month = 800;
    if (fault_rate > 0) {
      base.faults = tls::faults::FaultConfig::uniform(fault_rate);
    }
    auto ref_opts = base;
    ref_opts.observe_cache_entries = 0;
    ref_opts.fast_observe = false;
    tls::study::LongitudinalStudy ref(ref_opts);
    const auto ref_csv = chart_csv(ref);

    for (const unsigned threads : {0u, 1u, 8u}) {
      for (const bool cache_on : {false, true}) {
        SCOPED_TRACE(std::to_string(threads) +
                     (cache_on ? " cache-on" : " cache-off"));
        auto o = base;
        o.threads = threads;
        o.observe_cache_entries = cache_on ? 4096 : 0;
        // Keep the byte path so the cache is exercised even at 0% faults
        // (the fast path would otherwise skip serialization entirely).
        o.fast_observe = false;
        tls::study::LongitudinalStudy study(o);
        EXPECT_EQ(chart_csv(study), ref_csv);
        expect_monitors_equal(ref.monitor(), study.monitor());
      }
    }

    // Default configuration (fast path + cache, parallel) too.
    auto dflt_opts = base;
    dflt_opts.threads = 8;
    tls::study::LongitudinalStudy dflt(dflt_opts);
    EXPECT_EQ(chart_csv(dflt), ref_csv);
    expect_monitors_equal(ref.monitor(), dflt.monitor());
  }
}

TEST(ParallelStudy, ExportedFilesByteIdenticalCacheOnVsOff) {
  namespace fs = std::filesystem;
  const fs::path base = fs::path(::testing::TempDir()) / "tls_cache_csv";
  fs::remove_all(base);

  auto opts = small_options();
  opts.connections_per_month = 600;
  opts.fast_observe = false;
  auto off_opts = opts;
  off_opts.observe_cache_entries = 0;
  tls::study::LongitudinalStudy off(off_opts);
  const auto off_files = off.export_figures((base / "off").string());

  auto on_opts = opts;
  on_opts.observe_cache_entries = 4096;
  tls::study::LongitudinalStudy on(on_opts);
  const auto on_files = on.export_figures((base / "on").string());

  ASSERT_EQ(off_files.size(), on_files.size());
  for (std::size_t i = 0; i < off_files.size(); ++i) {
    const auto expected = slurp(off_files[i]);
    ASSERT_FALSE(expected.empty()) << off_files[i];
    EXPECT_EQ(slurp(on_files[i]), expected) << on_files[i];
  }
  fs::remove_all(base);
}

TEST(ParallelStudy, GenCacheOnOffByteIdenticalAcrossThreadsAndFaults) {
  // The producer-side GenCache (hello wire templates + negotiation memo)
  // must be a pure accelerator: identical RNG stream, identical events,
  // identical figures — at every thread count, with and without fault
  // injection. Reference: gen-cache off, serial.
  for (const double fault_rate : {0.0, 0.10}) {
    SCOPED_TRACE(fault_rate);
    auto base = small_options();
    base.connections_per_month = 800;
    if (fault_rate > 0) {
      base.faults = tls::faults::FaultConfig::uniform(fault_rate);
    }
    auto ref_opts = base;
    ref_opts.gen_cache = false;
    tls::study::LongitudinalStudy ref(ref_opts);
    const auto ref_csv = chart_csv(ref);

    for (const unsigned threads : {0u, 1u, 8u}) {
      for (const bool gen_on : {false, true}) {
        SCOPED_TRACE(std::to_string(threads) +
                     (gen_on ? " gen-cache-on" : " gen-cache-off"));
        auto o = base;
        o.threads = threads;
        o.gen_cache = gen_on;
        tls::study::LongitudinalStudy study(o);
        EXPECT_EQ(chart_csv(study), ref_csv);
        expect_monitors_equal(ref.monitor(), study.monitor());
      }
    }
  }
}

TEST(ParallelStudy, ExportedFilesByteIdenticalGenCacheOnVsOff) {
  // Full 11-file export matrix: gen-cache on at threads {0, 1, 8} against
  // a gen-cache-off serial reference, every file byte-identical.
  namespace fs = std::filesystem;
  const fs::path base = fs::path(::testing::TempDir()) / "tls_gencache_csv";
  fs::remove_all(base);

  auto opts = small_options();
  opts.connections_per_month = 600;
  auto off_opts = opts;
  off_opts.gen_cache = false;
  tls::study::LongitudinalStudy off(off_opts);
  const auto off_files = off.export_figures((base / "off").string());
  ASSERT_EQ(off_files.size(), 11u);  // 10 figures + the active-scan series

  for (const unsigned threads : {0u, 1u, 8u}) {
    SCOPED_TRACE(threads);
    auto on_opts = opts;
    on_opts.gen_cache = true;
    on_opts.threads = threads;
    tls::study::LongitudinalStudy on(on_opts);
    const auto on_files =
        on.export_figures((base / ("on" + std::to_string(threads))).string());
    ASSERT_EQ(on_files.size(), off_files.size());
    for (std::size_t i = 0; i < off_files.size(); ++i) {
      const auto expected = slurp(off_files[i]);
      ASSERT_FALSE(expected.empty()) << off_files[i];
      EXPECT_EQ(slurp(on_files[i]), expected) << on_files[i];
    }
  }
  fs::remove_all(base);
}

TEST(ParallelStudy, ExportedCsvFilesByteIdenticalAndRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path base = fs::path(::testing::TempDir()) / "tls_parallel_csv";
  fs::remove_all(base);

  auto opts = small_options();
  opts.connections_per_month = 600;
  tls::study::LongitudinalStudy serial(opts);
  const auto serial_files = serial.export_figures((base / "serial").string());

  auto popts = opts;
  popts.threads = 8;
  tls::study::LongitudinalStudy parallel(popts);
  const auto parallel_files =
      parallel.export_figures((base / "parallel").string());

  ASSERT_EQ(serial_files.size(), parallel_files.size());
  ASSERT_EQ(serial_files.size(), 11u);  // 10 figures + censys scans
  for (std::size_t i = 0; i < serial_files.size(); ++i) {
    const auto expected = slurp(serial_files[i]);
    ASSERT_FALSE(expected.empty()) << serial_files[i];
    EXPECT_EQ(slurp(parallel_files[i]), expected) << parallel_files[i];

    // Round-trip: every exported file parses back, rectangular, and every
    // value survives text -> double -> text unchanged (max_digits10).
    const auto rows = tls::analysis::parse_csv(expected);
    ASSERT_GT(rows.size(), 1u) << serial_files[i];
    for (const auto& row : rows) {
      EXPECT_EQ(row.size(), rows.front().size()) << serial_files[i];
    }
    for (std::size_t r = 1; r < rows.size(); ++r) {
      for (std::size_t c = 1; c < rows[r].size(); ++c) {
        const double value = std::stod(rows[r][c]);
        EXPECT_EQ(tls::analysis::csv_double(value), rows[r][c])
            << serial_files[i] << " row " << r;
      }
    }
  }
  fs::remove_all(base);
}

TEST(ParallelStudy, ScannerParallelSweepMatchesSerial) {
  const auto servers = tls::servers::ServerPopulation::standard();
  tls::scan::ScanPolicy policy;
  policy.network = tls::faults::NetworkProfile::lossy(0.3);
  const tls::scan::ActiveScanner scanner(servers, policy);
  const MonthRange range{Month(2015, 8), Month(2016, 7)};

  const auto serial = scanner.scan_range(range);
  tls::core::ThreadPool pool(6);
  const auto parallel = scanner.scan_range(range, pool);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    EXPECT_EQ(a.month, b.month);
    // Exact equality on every double: the parallel fold must reproduce
    // the serial accumulation order bit for bit.
    EXPECT_EQ(a.ssl3_support, b.ssl3_support);
    EXPECT_EQ(a.export_support, b.export_support);
    EXPECT_EQ(a.chooses_rc4, b.chooses_rc4);
    EXPECT_EQ(a.chooses_cbc, b.chooses_cbc);
    EXPECT_EQ(a.chooses_aead, b.chooses_aead);
    EXPECT_EQ(a.chooses_3des, b.chooses_3des);
    EXPECT_EQ(a.rc4_support, b.rc4_support);
    EXPECT_EQ(a.rc4_only, b.rc4_only);
    EXPECT_EQ(a.heartbeat_support, b.heartbeat_support);
    EXPECT_EQ(a.heartbleed_vulnerable, b.heartbleed_vulnerable);
    EXPECT_EQ(a.tls13_support, b.tls13_support);
    EXPECT_EQ(a.scanned, b.scanned);
    EXPECT_EQ(a.unreachable, b.unreachable);
    EXPECT_EQ(a.probe_attempts, b.probe_attempts);
    EXPECT_EQ(a.probe_retries, b.probe_retries);
    EXPECT_EQ(a.probes_abandoned, b.probes_abandoned);
    EXPECT_NEAR(b.scanned + b.unreachable, 1.0, 1e-9);
  }
}

// ---- merge-path unit tests ----

/// Feeds `per_month` connections of [begin, end] into `monitor`.
void feed(PassiveMonitor& monitor, MonthRange window, std::size_t per_month,
          std::uint64_t seed) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  tls::population::TrafficGenerator gen(market, servers, seed);
  gen.generate_range(window, per_month,
                     [&](const tls::population::ConnectionEvent& ev) {
                       monitor.observe(ev);
                     });
}

TEST(MonitorAbsorb, MonthDisjointShardsEqualSerialRun) {
  // Two shards covering disjoint month spans: absorbing them must equal
  // one monitor that saw both streams, exactly — including the
  // floating-point position accumulators, which live per month.
  const MonthRange first{Month(2015, 1), Month(2015, 3)};
  const MonthRange second{Month(2015, 4), Month(2015, 6)};

  PassiveMonitor combined;
  feed(combined, first, 800, 11);
  feed(combined, second, 800, 22);

  PassiveMonitor shard_a, shard_b;
  feed(shard_a, first, 800, 11);
  feed(shard_b, second, 800, 22);
  PassiveMonitor merged;
  merged.absorb(shard_a);
  merged.absorb(shard_b);

  expect_monitors_equal(combined, merged);
  for (const auto& [m, s] : combined.months()) {
    const auto* other = merged.month(m);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(s.pos_aead.sum, other->pos_aead.sum) << m.to_string();
    EXPECT_EQ(s.pos_cbc.sum, other->pos_cbc.sum) << m.to_string();
    EXPECT_EQ(s.adv_rc4, other->adv_rc4) << m.to_string();
    EXPECT_EQ(s.alerts(), other->alerts()) << m.to_string();
    EXPECT_EQ(s.negotiated_group(), other->negotiated_group()) << m.to_string();
  }
}

TEST(MonitorAbsorb, CountersFoldAcrossOverlappingMonths) {
  // Same month range in both shards: every counter must add.
  const MonthRange window{Month(2016, 1), Month(2016, 2)};
  PassiveMonitor a, b;
  feed(a, window, 500, 5);
  feed(b, window, 700, 6);
  const std::uint64_t total_a = a.total_connections();
  const std::uint64_t total_b = b.total_connections();
  const auto fp_a = a.durations().summarize().fingerprint_count;

  a.absorb(b);
  EXPECT_EQ(a.total_connections(), total_a + total_b);
  for (const auto& [m, s] : a.months()) {
    EXPECT_EQ(s.total, s.successful + s.failures + s.quarantined)
        << m.to_string();
  }
  // Fingerprint sets union (>= the larger side, <= the sum).
  const auto fp_merged = a.durations().summarize().fingerprint_count;
  EXPECT_GE(fp_merged, fp_a);
}

TEST(MonitorAbsorb, QuarantineRingMergeIsBoundedAndAccounted) {
  const MonthRange window{Month(2015, 1), Month(2015, 2)};
  PassiveMonitor a, b;
  tls::faults::FaultInjector inj_a(tls::faults::FaultConfig::bytes_only(0.5),
                                   1);
  tls::faults::FaultInjector inj_b(tls::faults::FaultConfig::bytes_only(0.5),
                                   2);
  a.set_fault_injector(&inj_a);
  b.set_fault_injector(&inj_b);
  feed(a, window, 800, 33);
  feed(b, window, 800, 44);
  a.set_fault_injector(nullptr);
  b.set_fault_injector(nullptr);

  const auto pushed_a = a.quarantine().total_pushed();
  const auto pushed_b = b.quarantine().total_pushed();
  const auto errors_a = a.errors().total();
  const auto errors_b = b.errors().total();
  ASSERT_GT(pushed_a, 0u);
  ASSERT_GT(pushed_b, 0u);

  a.absorb(b);
  EXPECT_EQ(a.quarantine().total_pushed(), pushed_a + pushed_b);
  EXPECT_LE(a.quarantine().size(), a.quarantine().capacity());
  EXPECT_EQ(a.errors().total(), errors_a + errors_b);
}

TEST(DurationMerge, MinFirstMaxLastSumConnections) {
  tls::fp::DurationTracker a, b;
  a.record("fp1", tls::core::Date(2015, 3, 10), 2);
  a.record("only_a", tls::core::Date(2015, 5, 1));
  b.record("fp1", tls::core::Date(2014, 12, 25), 3);
  b.record("fp1", tls::core::Date(2016, 1, 2));
  b.record("only_b", tls::core::Date(2015, 7, 7));

  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  const auto& lt = a.lifetimes().at("fp1");
  EXPECT_EQ(lt.first_day, tls::core::Date(2014, 12, 25).to_days());
  EXPECT_EQ(lt.last_day, tls::core::Date(2016, 1, 2).to_days());
  EXPECT_EQ(lt.connections, 6u);
  EXPECT_EQ(a.lifetimes().at("only_b").connections, 1u);
}

}  // namespace
