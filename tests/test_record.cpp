#include <gtest/gtest.h>

#include "wire/record.hpp"

namespace tls::wire {
namespace {

TEST(Record, RoundTrip) {
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.legacy_version = 0x0301;
  rec.fragment = {0xde, 0xad, 0xbe, 0xef};
  const auto bytes = rec.serialize();
  ASSERT_EQ(bytes.size(), 9u);
  EXPECT_EQ(bytes[0], 22);
  EXPECT_EQ(bytes[3], 0x00);
  EXPECT_EQ(bytes[4], 0x04);
  const Record parsed = Record::parse(bytes);
  EXPECT_EQ(parsed.type, rec.type);
  EXPECT_EQ(parsed.legacy_version, rec.legacy_version);
  EXPECT_EQ(parsed.fragment, rec.fragment);
}

TEST(Record, RejectsUnknownContentType) {
  std::uint8_t bytes[] = {99, 0x03, 0x01, 0x00, 0x00};
  EXPECT_THROW(Record::parse(bytes), ParseError);
}

TEST(Record, RejectsTruncatedFragment) {
  std::uint8_t bytes[] = {22, 0x03, 0x01, 0x00, 0x05, 0xaa};
  EXPECT_THROW(Record::parse(bytes), ParseError);
}

TEST(Record, RejectsTrailingBytes) {
  Record rec;
  rec.fragment = {0x01};
  auto bytes = rec.serialize();
  bytes.push_back(0xff);
  EXPECT_THROW(Record::parse(bytes), ParseError);
}

TEST(Record, ParsePrefixReportsConsumed) {
  Record rec;
  rec.fragment = {0x01, 0x02};
  auto bytes = rec.serialize();
  const auto n = bytes.size();
  bytes.push_back(0x77);
  std::size_t consumed = 0;
  const Record parsed = Record::parse_prefix(bytes, &consumed);
  EXPECT_EQ(consumed, n);
  EXPECT_EQ(parsed.fragment.size(), 2u);
}

TEST(Record, RejectsOversizedFragment) {
  Record rec;
  rec.fragment.assign(0x5000, 0);
  EXPECT_THROW(rec.serialize(), ParseError);
}

TEST(HandshakeMessage, RoundTrip) {
  HandshakeMessage m;
  m.type = HandshakeType::kClientHello;
  m.body = {1, 2, 3};
  const auto bytes = m.serialize();
  ASSERT_EQ(bytes.size(), 7u);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[3], 3);
  const auto parsed = HandshakeMessage::parse(bytes);
  EXPECT_EQ(parsed.type, HandshakeType::kClientHello);
  EXPECT_EQ(parsed.body, m.body);
}

TEST(HandshakeMessage, RejectsTrailing) {
  HandshakeMessage m;
  m.body = {1};
  auto bytes = m.serialize();
  bytes.push_back(0);
  EXPECT_THROW(HandshakeMessage::parse(bytes), ParseError);
}

TEST(WrapUnwrap, RoundTrip) {
  const std::uint8_t body[] = {0xca, 0xfe};
  const auto wire = wrap_handshake(HandshakeType::kServerHello, body, 0x0303);
  const auto out = unwrap_handshake(wire, HandshakeType::kServerHello);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0xca);
}

TEST(WrapUnwrap, RejectsWrongHandshakeType) {
  const std::uint8_t body[] = {0xca};
  const auto wire = wrap_handshake(HandshakeType::kServerHello, body, 0x0303);
  EXPECT_THROW(unwrap_handshake(wire, HandshakeType::kClientHello),
               ParseError);
}

TEST(WrapUnwrap, RejectsNonHandshakeRecord) {
  Record rec;
  rec.type = ContentType::kAlert;
  rec.fragment = {2, 40};
  EXPECT_THROW(
      unwrap_handshake(rec.serialize(), HandshakeType::kClientHello),
      ParseError);
}

}  // namespace
}  // namespace tls::wire
