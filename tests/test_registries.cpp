#include <gtest/gtest.h>

#include "tlscore/extensions.hpp"
#include "tlscore/grease.hpp"
#include "tlscore/named_groups.hpp"
#include "tlscore/timeline.hpp"
#include "tlscore/version.hpp"

namespace tls::core {
namespace {

TEST(Extensions, LookupKnown) {
  const auto* sni = find_extension(0);
  ASSERT_NE(sni, nullptr);
  EXPECT_EQ(sni->name, "server_name");
  EXPECT_EQ(extension_name(43), "supported_versions");
  EXPECT_EQ(extension_name(65281), "renegotiation_info");
}

TEST(Extensions, UnknownRendersNumeric) {
  EXPECT_EQ(find_extension(12345), nullptr);
  EXPECT_EQ(extension_name(12345), "ext_12345");
}

TEST(Extensions, VendorExtensionsFlagged) {
  const auto* npn = find_extension(13172);
  ASSERT_NE(npn, nullptr);
  EXPECT_FALSE(npn->iana_registered);
  const auto* hb = find_extension(15);
  ASSERT_NE(hb, nullptr);
  EXPECT_TRUE(hb->iana_registered);
}

TEST(Extensions, SortedUnique) {
  const auto all = all_extensions();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].id, all[i].id);
  }
}

TEST(NamedGroups, LookupKnown) {
  const auto* p256 = find_named_group(23);
  ASSERT_NE(p256, nullptr);
  EXPECT_EQ(p256->name, "secp256r1");
  EXPECT_TRUE(p256->elliptic);
  const auto* x = find_named_group(29);
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->name, "x25519");
  const auto* ffdhe = find_named_group(256);
  ASSERT_NE(ffdhe, nullptr);
  EXPECT_FALSE(ffdhe->elliptic);
}

TEST(NamedGroups, UnknownRendersNumeric) {
  EXPECT_EQ(find_named_group(999), nullptr);
  EXPECT_EQ(named_group_name(999), "group_999");
  EXPECT_EQ(named_group_name(14), "sect571r1");
}

TEST(Grease, SixteenValues) {
  const auto values = grease_values();
  EXPECT_EQ(values.size(), 16u);
  for (const auto v : values) {
    EXPECT_TRUE(is_grease(v)) << std::hex << v;
    EXPECT_EQ(v >> 8, v & 0xff);
  }
}

TEST(Grease, Negatives) {
  EXPECT_FALSE(is_grease(0x0a1a));
  EXPECT_FALSE(is_grease(0x1301));
  EXPECT_FALSE(is_grease(0x0000));
  EXPECT_FALSE(is_grease(0xc02f));
}

TEST(Versions, NamesAndRanks) {
  EXPECT_EQ(version_name(ProtocolVersion::kTls12), "TLSv1.2");
  EXPECT_EQ(version_name(std::uint16_t{0x7f12}), "TLS 1.3 draft-18");
  EXPECT_EQ(version_name(std::uint16_t{0x7e02}),
            "TLS 1.3 experiment 0x7e02");
  EXPECT_LT(version_rank(ProtocolVersion::kSsl3),
            version_rank(ProtocolVersion::kTls10));
  EXPECT_LT(version_rank(ProtocolVersion::kTls12),
            version_rank(ProtocolVersion::kTls13Draft18));
  EXPECT_LT(version_rank(ProtocolVersion::kTls13Draft18),
            version_rank(ProtocolVersion::kTls13Draft28));
  EXPECT_LT(version_rank(ProtocolVersion::kTls13Draft28),
            version_rank(ProtocolVersion::kTls13));
}

TEST(Versions, ReleaseDatesMatchTable1) {
  EXPECT_EQ(*version_release_date(ProtocolVersion::kSsl2), Date(1995, 2, 1));
  EXPECT_EQ(*version_release_date(ProtocolVersion::kSsl3), Date(1996, 11, 1));
  EXPECT_EQ(*version_release_date(ProtocolVersion::kTls10), Date(1999, 1, 1));
  EXPECT_EQ(*version_release_date(ProtocolVersion::kTls11), Date(2006, 4, 1));
  EXPECT_EQ(*version_release_date(ProtocolVersion::kTls12), Date(2008, 8, 1));
  EXPECT_EQ(*version_release_date(ProtocolVersion::kTls13), Date(2018, 8, 1));
  EXPECT_FALSE(version_release_date(ProtocolVersion::kTls13Draft18));
}

TEST(Versions, Tls13Family) {
  EXPECT_TRUE(is_tls13_family(ProtocolVersion::kTls13));
  EXPECT_TRUE(is_tls13_family(ProtocolVersion::kTls13Draft28));
  EXPECT_TRUE(is_tls13_family(ProtocolVersion::kTls13GoogleExperiment2));
  EXPECT_FALSE(is_tls13_family(ProtocolVersion::kTls12));
}

TEST(Timeline, ChronologicalOrder) {
  const auto events = attack_timeline();
  ASSERT_GE(events.size(), 10u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].date, events[i].date)
        << events[i - 1].id << " vs " << events[i].id;
  }
}

TEST(Timeline, FindsPaperEvents) {
  for (const char* id : {"beast", "lucky13", "rc4", "snowden", "heartbleed",
                         "poodle", "freak", "logjam", "sweet32"}) {
    EXPECT_NE(find_event(id), nullptr) << id;
  }
  EXPECT_EQ(find_event("spectre"), nullptr);
}

TEST(Timeline, PaperDates) {
  EXPECT_EQ(find_event("poodle")->date, Date(2014, 10, 14));
  EXPECT_EQ(find_event("logjam")->date, Date(2015, 5, 20));
  EXPECT_EQ(find_event("sweet32")->date, Date(2016, 8, 31));
  EXPECT_EQ(find_event("beast")->date, Date(2011, 9, 6));
}

}  // namespace
}  // namespace tls::core
