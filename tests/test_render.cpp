#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/render.hpp"

namespace tls::analysis {
namespace {

using tls::core::Month;

MonthlyChart small_chart() {
  MonthlyChart c;
  c.title = "test chart";
  c.range = {Month(2015, 1), Month(2015, 6)};
  c.series.push_back({"up", {0, 20, 40, 60, 80, 100}});
  c.series.push_back({"down", {100, 80, 60, 40, 20, 0}});
  c.height = 6;
  return c;
}

TEST(Render, ChartContainsTitleLegendAndAxis) {
  const auto out = render_chart(small_chart());
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("A = up"), std::string::npos);
  EXPECT_NE(out.find("B = down"), std::string::npos);
  EXPECT_NE(out.find("2015"), std::string::npos);
}

TEST(Render, ChartPlotsExtremes) {
  const auto out = render_chart(small_chart());
  // First column: up at bottom row, down at top row.
  const auto lines = [&] {
    std::vector<std::string> v;
    std::size_t start = 0;
    while (true) {
      const auto nl = out.find('\n', start);
      if (nl == std::string::npos) break;
      v.push_back(out.substr(start, nl - start));
      start = nl + 1;
    }
    return v;
  }();
  // Row 1 is the top data row (after the title).
  EXPECT_NE(lines[1].find('B'), std::string::npos);
  EXPECT_NE(lines[6].find('A'), std::string::npos);
}

TEST(Render, ChartRejectsLengthMismatch) {
  auto c = small_chart();
  c.series[0].values.pop_back();
  EXPECT_THROW(render_chart(c), std::invalid_argument);
}

TEST(Render, MarkersRendered) {
  auto c = small_chart();
  c.markers.emplace_back(Month(2015, 3), 'x');
  const auto out = render_chart(c);
  EXPECT_NE(out.find("x=2015-03"), std::string::npos);
}

TEST(Render, AutoScale) {
  auto c = small_chart();
  c.y_max = 0;  // auto
  EXPECT_NO_THROW(render_chart(c));
}

TEST(Render, TableAlignsColumns) {
  const auto out = render_table({{"a", "bb", "c"},
                                 {"dddd", "e", "ff"},
                                 {"g", "hhhhh", "i"}});
  // Each row must place column 2 at the same offset.
  const auto pos1 = out.find("bb");
  const auto line2 = out.find("dddd");
  const auto pos2 = out.find('e', line2);
  EXPECT_EQ(pos2 - line2, pos1);
  EXPECT_NE(out.find("----"), std::string::npos);  // header rule
}

TEST(Render, TableEmpty) { EXPECT_EQ(render_table({}), ""); }

TEST(Render, CsvFormat) {
  const auto csv = to_csv(small_chart());
  EXPECT_EQ(csv.rfind("month,up,down\n", 0), 0u);
  EXPECT_NE(csv.find("2015-01,0,100"), std::string::npos);
  EXPECT_NE(csv.find("2015-06,100,0"), std::string::npos);
}

TEST(Render, PctFormatting) {
  EXPECT_EQ(pct(12.34), "12.3%");
  EXPECT_EQ(pct(0.0), "0.0%");
}

TEST(Render, CsvEscapePassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("2015-01"), "2015-01");
}

TEST(Render, CsvEscapeQuotesSpecials) {
  // RFC 4180: fields with comma, quote, CR, or LF get quoted; embedded
  // quotes double.
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
}

TEST(Render, CsvSeriesNamesWithCommasStayOneField) {
  // Regression: a series named "RC4, advertised" used to split the header
  // into two columns.
  MonthlyChart c;
  c.title = "t";
  c.range = {Month(2015, 1), Month(2015, 2)};
  c.series.push_back({"RC4, advertised", {1, 2}});
  c.series.push_back({"with \"quote\"", {3, 4}});
  const auto csv = to_csv(c);
  EXPECT_EQ(csv.rfind("month,\"RC4, advertised\",\"with \"\"quote\"\"\"\n", 0),
            0u);
  const auto rows = parse_csv(csv);
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "RC4, advertised");
  EXPECT_EQ(rows[0][2], "with \"quote\"");
  EXPECT_EQ(rows[1][0], "2015-01");
}

TEST(Render, CsvDoubleRoundTrips) {
  // max_digits10 formatting: text -> double -> text is the identity for
  // values the old 6-digit default silently rounded.
  for (const double v : {0.1, 1.0 / 3.0, 12.345678901234567, 99.999999999,
                         0.0, 100.0, 1e-9, 2.0 / 7.0 * 100.0}) {
    const auto text = csv_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
  // Integral values keep their short form (no trailing ".00000...").
  EXPECT_EQ(csv_double(0.0), "0");
  EXPECT_EQ(csv_double(100.0), "100");
}

TEST(Render, CsvValuesSurviveExportParseCycle) {
  MonthlyChart c;
  c.title = "t";
  c.range = {Month(2015, 1), Month(2015, 3)};
  c.series.push_back({"frac", {1.0 / 3.0, 2.0 / 3.0, 0.1 + 0.2}});
  const auto rows = parse_csv(to_csv(c));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(std::strtod(rows[1][1].c_str(), nullptr), 1.0 / 3.0);
  EXPECT_EQ(std::strtod(rows[2][1].c_str(), nullptr), 2.0 / 3.0);
  EXPECT_EQ(std::strtod(rows[3][1].c_str(), nullptr), 0.1 + 0.2);
}

TEST(Render, ParseCsvHandlesQuotedFieldsAndCrlf) {
  const auto rows =
      parse_csv("a,\"b,1\",c\r\n\"multi\nline\",\"\"\"q\"\"\",tail\n");
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "b,1");
  EXPECT_EQ(rows[1][0], "multi\nline");
  EXPECT_EQ(rows[1][1], "\"q\"");
  EXPECT_EQ(rows[1][2], "tail");
}

TEST(Render, ParseCsvEmptyAndTrailingNewline) {
  EXPECT_TRUE(parse_csv("").empty());
  const auto rows = parse_csv("x,y\n");
  ASSERT_EQ(rows.size(), 1u);  // trailing newline adds no empty row
  EXPECT_EQ(rows[0][1], "y");
}

TEST(Render, LossTableEmpty) { EXPECT_EQ(render_loss_table({}), ""); }

TEST(Render, LossTableShowsPartitionAndCodes) {
  LossRow jan;
  jan.month = "2015-01";
  jan.total = 1000;
  jan.successful = 900;
  jan.failures = 50;
  jan.quarantined = 50;
  jan.one_sided = 7;
  jan.by_code = {30, 0, 12, 5, 0};  // trunc, trail, bad-len, bad-val, unsup
  const auto out = render_loss_table({jan});
  EXPECT_NE(out.find("month"), std::string::npos);
  EXPECT_NE(out.find("quar%"), std::string::npos);
  EXPECT_NE(out.find("bad-len"), std::string::npos);
  EXPECT_NE(out.find("2015-01"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("5.0%"), std::string::npos);  // 50/1000 quarantined
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_EQ(out.find("(clean)"), std::string::npos);
}

TEST(Render, LossTableCollapsesCleanMonths) {
  LossRow clean;
  clean.month = "2015-02";
  clean.total = clean.successful = 500;
  LossRow dirty;
  dirty.month = "2015-03";
  dirty.total = 100;
  dirty.successful = 90;
  dirty.quarantined = 10;
  dirty.by_code[0] = 10;
  const auto out = render_loss_table({clean, clean, dirty});
  EXPECT_EQ(out.find("2015-02"), std::string::npos);  // collapsed
  EXPECT_NE(out.find("2015-03"), std::string::npos);
  EXPECT_NE(out.find("(clean) 2 months with no losses"), std::string::npos);
}

TEST(Render, LossTableZeroTotalHasZeroPct) {
  LossRow empty;
  empty.month = "2016-01";
  empty.quarantined = 0;
  empty.one_sided = 1;  // forces the row to render
  const auto out = render_loss_table({empty});
  EXPECT_NE(out.find("2016-01"), std::string::npos);
  EXPECT_NE(out.find("0.0%"), std::string::npos);
}

}  // namespace
}  // namespace tls::analysis
