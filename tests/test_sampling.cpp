// The traffic generator samples through per-month cumulative-weight caches;
// MarketModel::sample is the reference implementation. These tests pin the
// two to the same distribution, and check composition invariants of the
// browser cipher-list builder.
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "clients/catalog_detail.hpp"
#include "population/traffic.hpp"

namespace {

using tls::core::Month;

TEST(SamplingEquivalence, CacheMatchesReferenceDistribution) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  const Month m(2015, 6);
  const int n = 40000;

  // Reference: direct MarketModel sampling.
  std::map<std::string, int> reference;
  tls::core::Rng ref_rng(1);
  for (int i = 0; i < n; ++i) {
    const auto pick = market.sample(m, ref_rng);
    ASSERT_NE(pick.entry, nullptr);
    ++reference[pick.entry->profile->name];
  }

  // Cached path: the generator's picks, observed through events.
  std::map<std::string, int> cached;
  tls::population::TrafficGenerator gen(market, servers, 2);
  gen.generate_month(m, n, [&](const tls::population::ConnectionEvent& ev) {
    ++cached[ev.client->name];
  });

  // Every profile with meaningful mass appears in both with similar share.
  for (const auto& [name, count] : reference) {
    const double ref_share = static_cast<double>(count) / n;
    if (ref_share < 0.01) continue;
    const auto it = cached.find(name);
    ASSERT_NE(it, cached.end()) << name;
    const double cached_share = static_cast<double>(it->second) / n;
    EXPECT_NEAR(cached_share, ref_share, 0.012) << name;
  }
}

TEST(SamplingEquivalence, VersionMixMatches) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  const Month m(2016, 6);
  const int n = 40000;

  std::map<std::string, int> reference, cached;
  tls::core::Rng ref_rng(3);
  for (int i = 0; i < n; ++i) {
    const auto pick = market.sample(m, ref_rng);
    if (pick.entry->profile->name == "Chrome") {
      ++reference[pick.config->version_label];
    }
  }
  tls::population::TrafficGenerator gen(market, servers, 4);
  gen.generate_month(m, n, [&](const tls::population::ConnectionEvent& ev) {
    if (ev.client->name == "Chrome") ++cached[ev.config->version_label];
  });

  int ref_total = 0, cached_total = 0;
  for (const auto& [v, c] : reference) ref_total += c;
  for (const auto& [v, c] : cached) cached_total += c;
  ASSERT_GT(ref_total, 1000);
  ASSERT_GT(cached_total, 1000);
  for (const auto& [version, count] : reference) {
    const double ref_share = static_cast<double>(count) / ref_total;
    if (ref_share < 0.05) continue;
    const double cached_share =
        cached.count(version) == 0
            ? 0.0
            : static_cast<double>(cached.at(version)) / cached_total;
    EXPECT_NEAR(cached_share, ref_share, 0.03) << "Chrome " << version;
  }
}

TEST(BrowserList, CountsMatchRequest) {
  using namespace tls::clients;
  for (const std::size_t aead : {0u, 4u, 6u}) {
    for (const std::size_t cbc : {5u, 10u, 17u, 29u}) {
      for (const std::size_t rc4 : {0u, 4u, 6u}) {
        for (const std::size_t tdes : {0u, 1u, 3u}) {
          const auto list = detail::browser_list(aead, cbc, rc4, tdes);
          ClientConfig cfg;
          cfg.cipher_suites = list;
          EXPECT_EQ(cfg.count_cbc(), cbc);
          EXPECT_EQ(cfg.count_rc4(), rc4);
          EXPECT_EQ(cfg.count_3des(), tdes);
          EXPECT_EQ(cfg.offers_aead(), aead > 0);
          // No duplicates.
          std::unordered_set<std::uint16_t> seen(list.begin(), list.end());
          EXPECT_EQ(seen.size(), list.size());
        }
      }
    }
  }
}

TEST(BrowserList, Rc4SitsMidListWhenPresent) {
  using namespace tls::clients;
  const auto list = detail::browser_list(0, 29, 6, 8);
  std::size_t first_rc4 = list.size();
  for (std::size_t i = 0; i < list.size(); ++i) {
    const auto* info = tls::core::find_cipher_suite(list[i]);
    if (info != nullptr && tls::core::is_rc4(*info)) {
      first_rc4 = i;
      break;
    }
  }
  ASSERT_LT(first_rc4, list.size());
  const double rel = static_cast<double>(first_rc4) /
                     static_cast<double>(list.size());
  EXPECT_GT(rel, 0.25);  // after the CBC head (Fig. 5 mid-list placement)
  EXPECT_LT(rel, 0.75);
}

}  // namespace
