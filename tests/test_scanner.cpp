#include <gtest/gtest.h>

#include "scan/scanner.hpp"
#include "wire/client_hello.hpp"

namespace tls::scan {
namespace {

using tls::core::Month;

TEST(ScanHellos, AreWellFormedWire) {
  for (const auto& hello : {chrome2015_hello(), ssl3_only_hello(),
                            export_only_hello(), tls13_draft_hello()}) {
    const auto parsed =
        tls::wire::ClientHello::parse_record(hello.serialize_record());
    EXPECT_EQ(parsed, hello);
    EXPECT_FALSE(hello.cipher_suites.empty());
  }
}

TEST(ScanHellos, Chrome2015Composition) {
  // §3.2: strong AES-GCM FS suites plus weaker CBC, RC4 and 3DES.
  const auto h = chrome2015_hello();
  using namespace tls::core;
  EXPECT_TRUE(h.offers([](const CipherSuiteInfo& s) { return is_aead(s); }));
  EXPECT_TRUE(h.offers([](const CipherSuiteInfo& s) { return is_cbc(s); }));
  EXPECT_TRUE(h.offers([](const CipherSuiteInfo& s) { return is_rc4(s); }));
  EXPECT_TRUE(h.offers([](const CipherSuiteInfo& s) { return is_3des(s); }));
  EXPECT_FALSE(h.offers([](const CipherSuiteInfo& s) { return is_export(s); }));
  EXPECT_EQ(h.legacy_version, 0x0303);
}

TEST(ScanHellos, Ssl3OnlyAndExportOnly) {
  EXPECT_EQ(ssl3_only_hello().legacy_version, 0x0300);
  const auto exp = export_only_hello();
  using namespace tls::core;
  EXPECT_FALSE(
      exp.offers([](const CipherSuiteInfo& s) { return !is_export(s); }));
}

struct Fixture {
  tls::servers::ServerPopulation pop =
      tls::servers::ServerPopulation::standard();
  ActiveScanner scanner{pop};
};

TEST(Scanner, FractionsAreProbabilities) {
  Fixture f;
  for (Month m(2015, 8); m <= Month(2018, 5); m += 6) {
    const auto s = f.scanner.scan(m);
    for (const double v :
         {s.ssl3_support, s.export_support, s.chooses_rc4, s.chooses_cbc,
          s.chooses_aead, s.chooses_3des, s.rc4_support, s.rc4_only,
          s.heartbeat_support, s.heartbleed_vulnerable, s.tls13_support}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Scanner, ChoiceClassesRoughlyPartition) {
  Fixture f;
  const auto s = f.scanner.scan(Month(2016, 6));
  // Nearly every host picks something for the Chrome hello.
  EXPECT_GT(s.chooses_rc4 + s.chooses_cbc + s.chooses_aead, 0.9);
}

TEST(Scanner, Ssl3SupportDeclines) {
  Fixture f;
  const auto a = f.scanner.scan(Month(2015, 9));
  const auto b = f.scanner.scan(Month(2018, 5));
  EXPECT_GT(a.ssl3_support, b.ssl3_support);
  EXPECT_GT(a.ssl3_support, 0.40);
  EXPECT_LT(b.ssl3_support, 0.25);
}

TEST(Scanner, Rc4ChoosersDecline) {
  Fixture f;
  EXPECT_GT(f.scanner.scan(Month(2015, 9)).chooses_rc4,
            f.scanner.scan(Month(2018, 5)).chooses_rc4);
}

TEST(Scanner, HeartbleedDecaysSharply) {
  Fixture f;
  const double at_disclosure =
      f.scanner.scan(Month(2014, 3)).heartbleed_vulnerable;
  const double a_month_later =
      f.scanner.scan(Month(2014, 6)).heartbleed_vulnerable;
  const double in_2018 = f.scanner.scan(Month(2018, 5)).heartbleed_vulnerable;
  EXPECT_GT(at_disclosure, 0.15);
  EXPECT_LT(a_month_later, 0.02);
  EXPECT_GT(in_2018, 0.0);   // the long tail never reaches zero (§5.4)
  EXPECT_LT(in_2018, 0.01);
}

TEST(Scanner, Tls13SupportAppearsLate) {
  Fixture f;
  EXPECT_EQ(f.scanner.scan(Month(2015, 9)).tls13_support, 0.0);
  EXPECT_GT(f.scanner.scan(Month(2018, 5)).tls13_support, 0.0);
}

TEST(Scanner, ScanRangeCoversWindow) {
  Fixture f;
  const auto snaps = f.scanner.scan_range(tls::core::censys_window());
  EXPECT_EQ(snaps.size(),
            static_cast<std::size_t>(tls::core::censys_window().size()));
  EXPECT_EQ(snaps.front().month, Month(2015, 8));
  EXPECT_EQ(snaps.back().month, Month(2018, 5));
}

TEST(Scanner, ExportSupportSmallAndShrinking) {
  Fixture f;
  const auto a = f.scanner.scan(Month(2015, 9));
  const auto b = f.scanner.scan(Month(2018, 5));
  EXPECT_LT(b.export_support, a.export_support + 1e-12);
  EXPECT_LT(b.export_support, 0.2);
}

TEST(Scanner, ProbeSetMatchesFreshlyBuiltHellos) {
  // The memoized probe set must be exactly what probe_segment used to
  // build per call: the same four hellos and their serialized records.
  const auto& probes = scan_probe_set();
  EXPECT_EQ(probes.chrome, chrome2015_hello());
  EXPECT_EQ(probes.ssl3, ssl3_only_hello());
  EXPECT_EQ(probes.expo, export_only_hello());
  EXPECT_EQ(probes.tls13, tls13_draft_hello());
  EXPECT_EQ(probes.chrome_record, chrome2015_hello().serialize_record());
  EXPECT_EQ(probes.ssl3_record, ssl3_only_hello().serialize_record());
  EXPECT_EQ(probes.expo_record, export_only_hello().serialize_record());
  EXPECT_EQ(probes.tls13_record, tls13_draft_hello().serialize_record());
  // Same object every call (built exactly once per process).
  EXPECT_EQ(&scan_probe_set(), &probes);
}

TEST(Scanner, FoldRangeReproducesScanRange) {
  // fold_range is scan_range's aggregation half, split out so replayed
  // checkpoint probes fold through the identical code path. Folding
  // freshly-probed segments must reproduce scan_range exactly.
  Fixture f;
  const tls::core::MonthRange range{Month(2016, 1), Month(2016, 6)};
  const auto n_segments = f.pop.segments().size();
  const auto n_months = static_cast<std::size_t>(range.size());
  std::vector<SegmentProbe> probes(n_months * n_segments);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    probes[i] = f.scanner.probe_segment(
        range.begin_month + static_cast<int>(i / n_segments),
        i % n_segments, /*by_traffic=*/false);
  }
  const auto folded = f.scanner.fold_range(range, probes);
  const auto direct = f.scanner.scan_range(range);
  ASSERT_EQ(folded.size(), direct.size());
  for (std::size_t i = 0; i < folded.size(); ++i) {
    EXPECT_EQ(folded[i].month, direct[i].month);
    // Bit-exact doubles: both paths fold probes in the same plan order.
    EXPECT_EQ(folded[i].ssl3_support, direct[i].ssl3_support);
    EXPECT_EQ(folded[i].export_support, direct[i].export_support);
    EXPECT_EQ(folded[i].chooses_rc4, direct[i].chooses_rc4);
    EXPECT_EQ(folded[i].heartbleed_vulnerable, direct[i].heartbleed_vulnerable);
    EXPECT_EQ(folded[i].tls13_support, direct[i].tls13_support);
  }
}

}  // namespace
}  // namespace tls::scan
