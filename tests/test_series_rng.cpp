#include <gtest/gtest.h>

#include "tlscore/rng.hpp"
#include "tlscore/series.hpp"

namespace tls::core {
namespace {

TEST(AnchorSeries, EmptyIsZero) {
  AnchorSeries s;
  EXPECT_EQ(s.at(Month(2015, 1)), 0.0);
}

TEST(AnchorSeries, ClampsOutsideRange) {
  AnchorSeries s{{Month(2013, 1), 2.0}, {Month(2014, 1), 4.0}};
  EXPECT_DOUBLE_EQ(s.at(Month(2012, 1)), 2.0);
  EXPECT_DOUBLE_EQ(s.at(Month(2018, 1)), 4.0);
}

TEST(AnchorSeries, LinearInterpolation) {
  AnchorSeries s{{Month(2013, 1), 0.0}, {Month(2014, 1), 12.0}};
  EXPECT_DOUBLE_EQ(s.at(Month(2013, 7)), 6.0);
  EXPECT_DOUBLE_EQ(s.at(Month(2013, 4)), 3.0);
  EXPECT_DOUBLE_EQ(s.at(Month(2013, 1)), 0.0);
  EXPECT_DOUBLE_EQ(s.at(Month(2014, 1)), 12.0);
}

TEST(AnchorSeries, MultiSegment) {
  AnchorSeries s{{Month(2013, 1), 0.0},
                 {Month(2013, 3), 10.0},
                 {Month(2013, 7), 2.0}};
  EXPECT_DOUBLE_EQ(s.at(Month(2013, 2)), 5.0);
  EXPECT_DOUBLE_EQ(s.at(Month(2013, 5)), 6.0);
}

TEST(AnchorSeries, RejectsNonIncreasingAnchors) {
  AnchorSeries s;
  s.add(Month(2013, 5), 1.0);
  EXPECT_THROW(s.add(Month(2013, 5), 2.0), std::invalid_argument);
  EXPECT_THROW(s.add(Month(2013, 1), 2.0), std::invalid_argument);
}

TEST(AnchorSeries, Constant) {
  const auto s = AnchorSeries::constant(0.42);
  EXPECT_DOUBLE_EQ(s.at(Month(2012, 1)), 0.42);
  EXPECT_DOUBLE_EQ(s.at(Month(2018, 4)), 0.42);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_EQ(s, 2 * 0x9e3779b97f4a7c15ull);
}

}  // namespace
}  // namespace tls::core
