#include <gtest/gtest.h>

#include "servers/population.hpp"
#include "tlscore/cipher_suites.hpp"

namespace tls::servers {
namespace {

using tls::core::Month;

TEST(ServerConfig, SupportsSuite) {
  ServerConfig c;
  c.cipher_preference = {0xc02f, 0x002f};
  EXPECT_TRUE(c.supports_suite(0xc02f));
  EXPECT_FALSE(c.supports_suite(0x0005));
}

TEST(ServerConfig, Ssl3AndTls13Flags) {
  ServerConfig c;
  c.min_version = 0x0300;
  EXPECT_TRUE(c.supports_ssl3());
  c.min_version = 0x0301;
  EXPECT_FALSE(c.supports_ssl3());
  EXPECT_FALSE(c.supports_tls13());
  c.tls13_versions = {0x7e02};
  EXPECT_TRUE(c.supports_tls13());
}

TEST(Population, StandardSegmentsWellFormed) {
  const auto pop = ServerPopulation::standard();
  ASSERT_GE(pop.segments().size(), 15u);
  for (const auto& seg : pop.segments()) {
    EXPECT_FALSE(seg.name.empty());
    EXPECT_FALSE(seg.config.cipher_preference.empty()) << seg.name;
    EXPECT_LE(seg.config.min_version, seg.config.max_version) << seg.name;
    for (const auto id : seg.config.cipher_preference) {
      EXPECT_NE(tls::core::find_cipher_suite(id), nullptr)
          << seg.name << " suite " << id;
    }
  }
}

TEST(Population, FindByName) {
  const auto pop = ServerPopulation::standard();
  EXPECT_NE(pop.find("web-modern-ecdhe"), nullptr);
  EXPECT_NE(pop.find("grid-storage"), nullptr);
  EXPECT_EQ(pop.find("no-such-segment"), nullptr);
}

TEST(Population, SpecialDestinationsExcludedFromGeneralSampling) {
  const auto pop = ServerPopulation::standard();
  tls::core::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const auto& seg = pop.sample_by_traffic(Month(2015, 6), rng);
    EXPECT_FALSE(seg.special_destination) << seg.name;
  }
}

TEST(Population, SamplingTracksWeights) {
  const auto pop = ServerPopulation::standard();
  tls::core::Rng rng(13);
  int legacy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto& seg = pop.sample_by_traffic(Month(2012, 6), rng);
    legacy += seg.name.starts_with("web-legacy");
  }
  // Legacy segments dominate 2012 traffic.
  EXPECT_GT(static_cast<double>(legacy) / n, 0.5);

  legacy = 0;
  for (int i = 0; i < n; ++i) {
    const auto& seg = pop.sample_by_traffic(Month(2018, 3), rng);
    legacy += seg.name.starts_with("web-legacy");
  }
  EXPECT_LT(static_cast<double>(legacy) / n, 0.05);
}

TEST(Population, HostFractionSsl3Declines) {
  const auto pop = ServerPopulation::standard();
  const auto ssl3 = [&](Month m) {
    return pop.host_fraction(m, [](const ServerSegment& s) {
      return s.config.supports_ssl3();
    });
  };
  EXPECT_GT(ssl3(Month(2015, 9)), 0.40);
  EXPECT_LT(ssl3(Month(2018, 5)), 0.25);
  EXPECT_GT(ssl3(Month(2015, 9)), ssl3(Month(2018, 5)));
}

TEST(Population, HeartbleedRampOnlyOnHeartbeatSegments) {
  const auto pop = ServerPopulation::standard();
  for (const auto& seg : pop.segments()) {
    if (!seg.config.echo_heartbeat) {
      EXPECT_EQ(seg.heartbleed_unpatched.at(Month(2014, 4)), 0.0) << seg.name;
    }
  }
  const auto* hb = pop.find("web-tls12-rc4first");
  ASSERT_NE(hb, nullptr);
  EXPECT_GT(hb->heartbleed_unpatched.at(Month(2014, 3)),
            hb->heartbleed_unpatched.at(Month(2014, 6)));
}

TEST(Population, QuirkSegmentsPresent) {
  const auto pop = ServerPopulation::standard();
  EXPECT_EQ(pop.find("interwise-conf")->config.quirk,
            ServerQuirk::kChooseExportRc4Unoffered);
  EXPECT_EQ(pop.find("web-gost")->config.quirk,
            ServerQuirk::kChooseGostUnoffered);
}

TEST(Population, NagiosSpeaksSslv2) {
  const auto pop = ServerPopulation::standard();
  EXPECT_LE(pop.find("nagios-monitor")->config.min_version, 0x0002);
}

}  // namespace
}  // namespace tls::servers
