// Unit tests for the sharded-execution primitives: the deterministic work
// partitioner, the stream-seed derivation, and the thread pool's "every
// index exactly once, any pool size" contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/shard.hpp"
#include "tlscore/rng.hpp"

namespace {

TEST(ShardCounts, SumsToTotalAndBalances) {
  for (const std::size_t total : {0u, 1u, 7u, 8u, 9u, 1000u, 100001u}) {
    for (const std::size_t shards : {1u, 2u, 8u, 13u}) {
      const auto counts = tls::core::shard_counts(total, shards);
      ASSERT_EQ(counts.size(), shards);
      EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
                total);
      const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
      EXPECT_LE(*hi - *lo, 1u);  // balanced within one item
    }
  }
}

TEST(ShardCounts, ZeroShardsDegradesToOne) {
  const auto counts = tls::core::shard_counts(42, 0);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 42u);
}

TEST(RngStream, DeterministicAndDecorrelated) {
  // Same (seed, lane, shard) -> same stream.
  auto a = tls::core::rng_stream(42, 505, 3);
  auto b = tls::core::rng_stream(42, 505, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());

  // Any coordinate change changes the stream seed.
  const auto base = tls::core::rng_stream_seed(42, 505, 3);
  EXPECT_NE(base, tls::core::rng_stream_seed(43, 505, 3));
  EXPECT_NE(base, tls::core::rng_stream_seed(42, 506, 3));
  EXPECT_NE(base, tls::core::rng_stream_seed(42, 505, 4));
  // Lane/shard are not interchangeable (no (a,b) == (b,a) collision).
  EXPECT_NE(tls::core::rng_stream_seed(42, 3, 505), base);
}

TEST(RngStream, SeedsSpreadAcrossAPlanGrid) {
  // A realistic plan grid (75 months x 8 shards) must not collide.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t lane = 0; lane < 75; ++lane) {
    for (std::uint64_t shard = 0; shard < 8; ++shard) {
      seeds.insert(tls::core::rng_stream_seed(42, lane, shard));
    }
  }
  EXPECT_EQ(seeds.size(), 75u * 8u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {0u, 1u, 4u}) {
    SCOPED_TRACE(threads);
    tls::core::ThreadPool pool(threads);
    constexpr std::size_t kN = 300;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossGrids) {
  tls::core::ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.run(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
  sum = 0;
  pool.run(5, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 10u);
  pool.run(0, [&](std::size_t) { FAIL() << "empty grid ran a task"; });
}

TEST(ThreadPool, PropagatesFirstException) {
  for (const unsigned threads : {0u, 3u}) {
    SCOPED_TRACE(threads);
    tls::core::ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.run(50,
                 [&](std::size_t i) {
                   ++ran;
                   if (i == 7) throw std::runtime_error("shard 7 failed");
                 }),
        std::runtime_error);
    // The grid still drains: no task is lost or double-run afterwards.
    ran = 0;
    pool.run(20, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 20);
  }
}

TEST(ThreadPool, ResultSlotsAreOrderIndependent) {
  // Tasks write per-index slots; the collected vector must equal the
  // serial one for any pool size.
  const auto compute = [](unsigned threads) {
    tls::core::ThreadPool pool(threads);
    std::vector<std::uint64_t> out(64);
    pool.run(out.size(), [&](std::size_t i) {
      out[i] = tls::core::rng_stream(9, i, 0).next();
    });
    return out;
  };
  const auto serial = compute(0);
  EXPECT_EQ(compute(1), serial);
  EXPECT_EQ(compute(8), serial);
}

}  // namespace
