// Monitor snapshot codec (notary/snapshot.hpp): the journal's payload
// format. Contract under test: decode(encode(m)) is absorb-equivalent to m
// bit for bit (including the Fig. 5 double accumulators), the encoding is
// a deterministic function of the state, and hostile bytes are rejected
// with ParseError — never a crash, never an out-of-bounds access.
#include <gtest/gtest.h>

#include <vector>

#include "clients/catalog.hpp"
#include "faults/injector.hpp"
#include "notary/monitor.hpp"
#include "notary/snapshot.hpp"
#include "population/market.hpp"
#include "population/traffic.hpp"
#include "servers/population.hpp"
#include "tlscore/rng.hpp"
#include "wire/errors.hpp"

namespace {

using tls::core::Month;
using tls::core::MonthRange;
using tls::notary::PassiveMonitor;
using tls::notary::decode_monitor_state;
using tls::notary::encode_monitor_state;

/// A monitor with every subsystem populated: months, fingerprints,
/// durations, taxonomy, quarantine ring, fault bypasses and cache stats.
PassiveMonitor populated_monitor(const tls::fp::FingerprintDatabase* db,
                                 double fault_rate, std::uint64_t seed) {
  PassiveMonitor mon(db);
  tls::faults::FaultInjector injector(
      tls::faults::FaultConfig::uniform(fault_rate), seed ^ 0xfa17);
  if (fault_rate > 0) mon.set_fault_injector(&injector);
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  tls::population::TrafficGenerator gen(market, servers, seed);
  gen.generate_range({Month(2015, 11), Month(2016, 2)}, 600,
                     [&](const tls::population::ConnectionEvent& ev) {
                       mon.observe(ev);
                     });
  mon.set_fault_injector(nullptr);
  return mon;
}

void expect_same_state(const PassiveMonitor& a, const PassiveMonitor& b) {
  EXPECT_EQ(a.total_connections(), b.total_connections());
  EXPECT_EQ(a.fingerprintable_connections(), b.fingerprintable_connections());
  EXPECT_EQ(a.labeled_connections(), b.labeled_connections());
  EXPECT_EQ(a.errors().total(), b.errors().total());
  EXPECT_EQ(a.quarantine().total_pushed(), b.quarantine().total_pushed());
  ASSERT_EQ(a.quarantine().size(), b.quarantine().size());
  for (std::size_t i = 0; i < a.quarantine().size(); ++i) {
    EXPECT_EQ(a.quarantine()[i].stage, b.quarantine()[i].stage);
    EXPECT_EQ(a.quarantine()[i].code, b.quarantine()[i].code);
    EXPECT_EQ(a.quarantine()[i].month, b.quarantine()[i].month);
    EXPECT_EQ(a.quarantine()[i].prefix, b.quarantine()[i].prefix);
  }
  ASSERT_EQ(a.months().size(), b.months().size());
  for (const auto& [m, sa] : a.months()) {
    const auto* sb = b.month(m);
    ASSERT_NE(sb, nullptr) << m.to_string();
    EXPECT_EQ(sa.total, sb->total) << m.to_string();
    EXPECT_EQ(sa.successful, sb->successful) << m.to_string();
    EXPECT_EQ(sa.failures, sb->failures) << m.to_string();
    EXPECT_EQ(sa.quarantined, sb->quarantined) << m.to_string();
    EXPECT_EQ(sa.one_sided_client, sb->one_sided_client) << m.to_string();
    EXPECT_EQ(sa.adv_tls13, sb->adv_tls13) << m.to_string();
    EXPECT_EQ(sa.resumed, sb->resumed) << m.to_string();
    EXPECT_EQ(sa.fingerprints, sb->fingerprints) << m.to_string();
    EXPECT_EQ(sa.parse_errors(), sb->parse_errors()) << m.to_string();
    EXPECT_EQ(sa.negotiated_version(), sb->negotiated_version());
    EXPECT_EQ(sa.negotiated_class(), sb->negotiated_class());
    EXPECT_EQ(sa.negotiated_aead(), sb->negotiated_aead());
    EXPECT_EQ(sa.negotiated_kex(), sb->negotiated_kex());
    EXPECT_EQ(sa.negotiated_group(), sb->negotiated_group());
    EXPECT_EQ(sa.adv_tls13_versions(), sb->adv_tls13_versions());
    EXPECT_EQ(sa.alerts(), sb->alerts());
    // Bit-exact doubles — the journal's whole reason for bit_cast.
    EXPECT_EQ(sa.pos_aead.sum, sb->pos_aead.sum) << m.to_string();
    EXPECT_EQ(sa.pos_aead.n, sb->pos_aead.n) << m.to_string();
    EXPECT_EQ(sa.pos_cbc.sum, sb->pos_cbc.sum) << m.to_string();
    EXPECT_EQ(sa.pos_rc4.sum, sb->pos_rc4.sum) << m.to_string();
    EXPECT_EQ(sa.pos_des.sum, sb->pos_des.sum) << m.to_string();
    EXPECT_EQ(sa.pos_3des.sum, sb->pos_3des.sum) << m.to_string();
  }
  ASSERT_EQ(a.durations().size(), b.durations().size());
  for (const auto& [hash, la] : a.durations().lifetimes()) {
    const auto it = b.durations().lifetimes().find(hash);
    ASSERT_NE(it, b.durations().lifetimes().end()) << hash;
    EXPECT_EQ(la.first_day, it->second.first_day);
    EXPECT_EQ(la.last_day, it->second.last_day);
    EXPECT_EQ(la.connections, it->second.connections);
  }
}

TEST(MonitorSnapshot, RoundTripPreservesEveryCounter) {
  tls::fp::FingerprintDatabase db;
  const auto mon = populated_monitor(&db, 0.15, 77);
  ASSERT_GT(mon.total_connections(), 0u);
  ASSERT_GT(mon.errors().total(), 0u);           // taxonomy populated
  ASSERT_GT(mon.quarantine().total_pushed(), 0u);  // ring populated

  const auto bytes = encode_monitor_state(mon);
  const auto decoded = decode_monitor_state(bytes, &db);
  expect_same_state(mon, decoded);

  // Cache statistics survive too (not absorb-visible via figures, but part
  // of the snapshot contract).
  const auto& ca = mon.observe_cache_stats();
  const auto& cb = decoded.observe_cache_stats();
  EXPECT_EQ(ca.bypasses, cb.bypasses);
  EXPECT_EQ(ca.uncacheable, cb.uncacheable);
  EXPECT_EQ(ca.client.hits, cb.client.hits);
  EXPECT_EQ(ca.client.misses, cb.client.misses);
  EXPECT_EQ(ca.server.inserts, cb.server.inserts);
}

TEST(MonitorSnapshot, EncodingIsDeterministic) {
  tls::fp::FingerprintDatabase db;
  const auto mon = populated_monitor(&db, 0.10, 13);
  const auto bytes = encode_monitor_state(mon);
  EXPECT_EQ(encode_monitor_state(mon), bytes);
  // encode(decode(encode(m))) is a fixed point: the decoded monitor holds
  // the same state, so it must serialize to the same bytes.
  const auto decoded = decode_monitor_state(bytes, &db);
  EXPECT_EQ(encode_monitor_state(decoded), bytes);
}

TEST(MonitorSnapshot, AbsorbingDecodedEqualsAbsorbingOriginal) {
  tls::fp::FingerprintDatabase db;
  const auto shard_a = populated_monitor(&db, 0.10, 5);
  const auto shard_b = populated_monitor(&db, 0.0, 6);

  PassiveMonitor via_original(&db);
  via_original.absorb(shard_a);
  via_original.absorb(shard_b);

  PassiveMonitor via_decoded(&db);
  via_decoded.absorb(
      decode_monitor_state(encode_monitor_state(shard_a), &db));
  via_decoded.absorb(
      decode_monitor_state(encode_monitor_state(shard_b), &db));

  expect_same_state(via_original, via_decoded);
}

TEST(MonitorSnapshot, EmptyMonitorRoundTrips) {
  const PassiveMonitor empty;
  const auto bytes = encode_monitor_state(empty);
  const auto decoded = decode_monitor_state(bytes, nullptr);
  EXPECT_EQ(decoded.total_connections(), 0u);
  EXPECT_TRUE(decoded.months().empty());
  EXPECT_EQ(encode_monitor_state(decoded), bytes);
}

TEST(MonitorSnapshot, EveryTruncationIsRejected) {
  tls::fp::FingerprintDatabase db;
  const auto bytes = encode_monitor_state(populated_monitor(&db, 0.2, 9));
  // Every proper prefix must throw (length prefixes and expect_empty leave
  // no silently-accepted truncation point), stepping more coarsely through
  // the large middle to keep the test fast.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 || len + 64 >= bytes.size()) ? 1 : 37) {
    EXPECT_THROW(
        decode_monitor_state({bytes.data(), len}, &db),
        tls::wire::ParseError)
        << "prefix length " << len;
  }
  // Trailing garbage after a complete snapshot is rejected too.
  auto padded = bytes;
  padded.push_back(0x00);
  EXPECT_THROW(decode_monitor_state(padded, &db), tls::wire::ParseError);
}

TEST(MonitorSnapshot, BadEnumKeysAreRejectedNotWritten) {
  // A hostile snapshot claiming an out-of-range enum key must throw before
  // any counter array is indexed (OOB-write hazard).
  const PassiveMonitor empty;
  auto bytes = encode_monitor_state(empty);
  // Version tampering is rejected as unsupported.
  auto wrong_version = bytes;
  wrong_version[3] = 0x7f;  // version u32 big-endian low byte
  EXPECT_THROW(decode_monitor_state(wrong_version, nullptr),
               tls::wire::ParseError);
}

TEST(MonitorSnapshot, RandomCorruptionNeverCrashes) {
  tls::fp::FingerprintDatabase db;
  const auto bytes = encode_monitor_state(populated_monitor(&db, 0.1, 21));
  tls::core::Rng rng(0xc0de);
  for (int i = 0; i < 400; ++i) {
    auto corrupt = bytes;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.below(corrupt.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    // Either the corruption lands in a value (decodes fine) or in
    // structure (throws ParseError); anything else — a crash, a hang, an
    // OOB access under ASan — fails the test run.
    try {
      const auto decoded = decode_monitor_state(corrupt, &db);
      (void)decoded;
    } catch (const tls::wire::ParseError&) {
    }
  }
}

}  // namespace
