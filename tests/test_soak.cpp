// Soak test: drive the full synthetic pipeline through the chaos tap at
// fault rates {0%, 1%, 10%, 50%} and check the graceful-degradation
// contract end to end —
//   * the monitor never throws, no matter what the tap emits;
//   * every month's partition is exact: total = successful + failures +
//     quarantined, and every generated event lands in the partition;
//   * the zero-fault path is bit-identical to a monitor with no injector;
//   * under unbiased capture loss the accepted-connection aggregates stay
//     within sampling noise of the fault-free baseline;
//   * the scanner's loss accounting closes (scanned + unreachable == 1)
//     and its retry/backoff schedule is deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <cmath>

#include "faults/injector.hpp"
#include "notary/monitor.hpp"
#include "population/traffic.hpp"
#include "scan/scanner.hpp"
#include "wire/transcript.hpp"

namespace {

using tls::core::Month;
using tls::core::MonthRange;
using tls::faults::FaultConfig;
using tls::faults::FaultInjector;
using tls::notary::MonthlyStats;
using tls::notary::PassiveMonitor;

const MonthRange kWindow{Month(2014, 11), Month(2015, 4)};
constexpr std::size_t kPerMonth = 2000;

/// Feeds the same deterministic connection stream (fixed generator seed)
/// into a fresh monitor, optionally through a fault injector.
std::uint64_t run_pipeline(PassiveMonitor& monitor, FaultInjector* injector) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  tls::population::TrafficGenerator gen(market, servers, 1234);
  monitor.set_fault_injector(injector);
  std::uint64_t events = 0;
  gen.generate_range(kWindow, kPerMonth,
                     [&](const tls::population::ConnectionEvent& ev) {
                       ++events;
                       ASSERT_NO_THROW(monitor.observe(ev));
                     });
  monitor.set_fault_injector(nullptr);
  return events;
}

void expect_partition_exact(const PassiveMonitor& monitor,
                            std::uint64_t events_fed) {
  std::uint64_t partitioned = 0;
  for (const auto& [m, s] : monitor.months()) {
    EXPECT_EQ(s.total, s.successful + s.failures + s.quarantined)
        << m.to_string();
    partitioned += s.total;
  }
  // Every event fed to the monitor landed in exactly one bucket.
  EXPECT_EQ(partitioned, events_fed);
}

struct DatasetAggregates {
  double adv_rc4 = 0, adv_aead = 0, adv_export = 0;
  double success_rate = 0;
};

DatasetAggregates aggregates_of(const PassiveMonitor& monitor) {
  std::uint64_t accepted = 0, rc4 = 0, aead = 0, expo = 0, ok = 0;
  for (const auto& [m, s] : monitor.months()) {
    accepted += s.accepted();
    rc4 += s.adv_rc4;
    aead += s.adv_aead;
    expo += s.adv_export;
    ok += s.successful;
  }
  DatasetAggregates a;
  if (accepted == 0) return a;
  const auto pct = [&](std::uint64_t n) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(accepted);
  };
  a.adv_rc4 = pct(rc4);
  a.adv_aead = pct(aead);
  a.adv_export = pct(expo);
  a.success_rate = pct(ok);
  return a;
}

TEST(Soak, PartitionExactAtEveryFaultRate) {
  for (const double rate : {0.0, 0.01, 0.10, 0.50}) {
    SCOPED_TRACE(rate);
    PassiveMonitor monitor;
    FaultInjector injector(FaultConfig::uniform(rate), 0xfeed);
    const auto events = run_pipeline(monitor, &injector);
    ASSERT_GT(events, 0u);
    expect_partition_exact(monitor, events);
    if (rate == 0.0) {
      EXPECT_EQ(injector.stats().total_faults(), 0u);
    } else {
      EXPECT_GT(injector.stats().total_faults(), 0u);
      // Heavily faulted runs must actually quarantine something.
      std::uint64_t quarantined = 0;
      for (const auto& [m, s] : monitor.months()) quarantined += s.quarantined;
      EXPECT_GT(quarantined, 0u);
    }
  }
}

TEST(Soak, ZeroFaultRateBitIdenticalToNoInjector) {
  PassiveMonitor plain;
  run_pipeline(plain, nullptr);

  PassiveMonitor tapped;
  FaultInjector idle(FaultConfig::uniform(0.0), 0xfeed);
  run_pipeline(tapped, &idle);

  ASSERT_EQ(plain.total_connections(), tapped.total_connections());
  EXPECT_EQ(plain.malformed_hellos(), 0u);
  EXPECT_EQ(tapped.malformed_hellos(), 0u);
  for (const auto& [m, a] : plain.months()) {
    const auto* b = tapped.month(m);
    ASSERT_NE(b, nullptr) << m.to_string();
    EXPECT_EQ(a.total, b->total) << m.to_string();
    EXPECT_EQ(a.successful, b->successful) << m.to_string();
    EXPECT_EQ(a.failures, b->failures) << m.to_string();
    EXPECT_EQ(a.quarantined, b->quarantined) << m.to_string();
    EXPECT_EQ(a.negotiated_version(), b->negotiated_version()) << m.to_string();
    EXPECT_EQ(a.negotiated_class(), b->negotiated_class()) << m.to_string();
    EXPECT_EQ(a.negotiated_kex(), b->negotiated_kex()) << m.to_string();
    EXPECT_EQ(a.adv_rc4, b->adv_rc4) << m.to_string();
    EXPECT_EQ(a.adv_aead, b->adv_aead) << m.to_string();
    EXPECT_EQ(a.alerts(), b->alerts()) << m.to_string();
    EXPECT_EQ(a.fingerprints, b->fingerprints) << m.to_string();
    EXPECT_EQ(a.parse_errors().size(), 0u) << m.to_string();
  }
}

TEST(Soak, UnbiasedLossLeavesAggregatesWithinEpsilon) {
  PassiveMonitor baseline;
  run_pipeline(baseline, nullptr);
  const auto base = aggregates_of(baseline);

  // Pure capture loss (whole flights dropped) is unbiased: the surviving
  // accepted set is a uniform subsample of the same event stream, so every
  // percentage moves only by sampling noise.
  FaultConfig loss;
  loss.drop_flight = 0.5;
  PassiveMonitor lossy;
  FaultInjector injector(loss, 0xfeed);
  const auto events = run_pipeline(lossy, &injector);
  expect_partition_exact(lossy, events);
  const auto got = aggregates_of(lossy);

  constexpr double kEpsilonPct = 2.0;  // percentage points
  EXPECT_NEAR(got.adv_rc4, base.adv_rc4, kEpsilonPct);
  EXPECT_NEAR(got.adv_aead, base.adv_aead, kEpsilonPct);
  EXPECT_NEAR(got.adv_export, base.adv_export, kEpsilonPct);
  EXPECT_NEAR(got.success_rate, base.success_rate, kEpsilonPct);

  // And the loss is real: roughly half the captures are gone.
  std::uint64_t accepted = 0, total = 0;
  for (const auto& [m, s] : lossy.months()) {
    accepted += s.accepted();
    total += s.total;
  }
  EXPECT_LT(accepted, total);
  EXPECT_NEAR(static_cast<double>(accepted) / static_cast<double>(total),
              1.0 - loss.drop_flight, 0.05);
}

TEST(Soak, TaxonomyAccountsForByteFaultRuns) {
  PassiveMonitor monitor;
  FaultInjector injector(FaultConfig::bytes_only(0.5), 0x50a1);
  const auto events = run_pipeline(monitor, &injector);
  expect_partition_exact(monitor, events);
  // Byte-level corruption must surface in the taxonomy, and the ring must
  // hold evidence without exceeding its bound.
  EXPECT_GT(monitor.errors().total(), 0u);
  EXPECT_LE(monitor.quarantine().size(), monitor.quarantine().capacity());
  EXPECT_GE(monitor.quarantine().total_pushed(), monitor.quarantine().size());
  // Per-month parse_errors roll up to the same grand total as the taxonomy.
  std::uint64_t by_month = 0;
  for (const auto& [m, s] : monitor.months()) {
    for (const auto& [code, n] : s.parse_errors()) by_month += n;
  }
  EXPECT_EQ(by_month, monitor.errors().total());

  // The loss-table rows mirror the monitor's partition exactly.
  const auto rows = tls::notary::loss_rows(monitor);
  ASSERT_EQ(rows.size(), monitor.months().size());
  std::uint64_t row_errors = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.total, row.successful + row.failures + row.quarantined)
        << row.month;
    for (const auto n : row.by_code) row_errors += n;
  }
  EXPECT_EQ(row_errors, monitor.errors().total());
  const auto table = tls::analysis::render_loss_table(rows);
  EXPECT_NE(table.find("quar%"), std::string::npos);
  EXPECT_NE(table.find(rows.front().month), std::string::npos);
}

TEST(Soak, FlightsPathNeverThrowsOnCorruptedCaptures) {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  tls::population::TrafficGenerator gen(market, servers, 77);

  PassiveMonitor monitor;
  FaultInjector injector(FaultConfig::uniform(0.5), 0xbeef);
  std::uint64_t events = 0;
  gen.generate_range({Month(2015, 1), Month(2015, 3)}, 1500,
                     [&](const tls::population::ConnectionEvent& ev) {
                       if (ev.sslv2) {
                         monitor.observe_sslv2(ev.month);
                         ++events;
                         return;
                       }
                       auto flights = tls::population::synthesize_flights(ev);
                       injector.corrupt_capture(flights.client,
                                                flights.server);
                       ++events;
                       ASSERT_NO_THROW(monitor.observe_flights(
                           ev.month, ev.day, flights.client, flights.server));
                     });
  expect_partition_exact(monitor, events);
  // Corrupting full transcripts at 50% must exercise the salvage paths.
  std::uint64_t one_sided = 0;
  for (const auto& [m, s] : monitor.months()) {
    one_sided += s.one_sided_client + s.one_sided_server;
  }
  EXPECT_GT(one_sided, 0u);
  EXPECT_GT(monitor.errors().total(), 0u);
}

TEST(Soak, FlightsPathSurvivesPureGarbage) {
  PassiveMonitor monitor;
  tls::core::Rng rng(31337);
  const Month m(2015, 6);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> client(rng.below(200));
    std::vector<std::uint8_t> server(rng.below(200));
    for (auto& b : client) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : server) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_NO_THROW(
        monitor.observe_flights(m, tls::core::Date(2015, 6, 15), client,
                                server));
  }
  const auto* s = monitor.month(m);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total, 2000u);
  EXPECT_EQ(s->total, s->successful + s->failures + s->quarantined);
}

// ---- scanner loss accounting ----

TEST(Soak, ScannerCoverageClosesAtEveryLossLevel) {
  const auto servers = tls::servers::ServerPopulation::standard();
  for (const double level : {0.0, 0.01, 0.10, 0.50}) {
    SCOPED_TRACE(level);
    tls::scan::ScanPolicy policy;
    policy.network = tls::faults::NetworkProfile::lossy(level);
    const tls::scan::ActiveScanner scanner(servers, policy);
    for (const Month m : {Month(2015, 9), Month(2017, 3)}) {
      const auto snap = scanner.scan(m);
      EXPECT_NEAR(snap.scanned + snap.unreachable, 1.0, 1e-9)
          << m.to_string();
      if (level == 0.0) {
        EXPECT_DOUBLE_EQ(snap.scanned, 1.0);
        EXPECT_EQ(snap.probe_retries, 0u);
        EXPECT_EQ(snap.probes_abandoned, 0u);
      } else if (level >= 0.10) {
        // At 1% the handful of weighted segments may all get through on
        // the first try; from 10% up retries must show, and at 50% whole
        // hosts must be dead for the sweep.
        EXPECT_GT(snap.probe_retries, 0u);
        if (level >= 0.50) EXPECT_GT(snap.unreachable, 0.0);
      }
    }
  }
}

TEST(Soak, ScannerScheduleDeterministicForFixedSeed) {
  const auto servers = tls::servers::ServerPopulation::standard();
  tls::scan::ScanPolicy policy;
  policy.network = tls::faults::NetworkProfile::lossy(0.4);
  const tls::scan::ActiveScanner a(servers, policy);
  const tls::scan::ActiveScanner b(servers, policy);
  const Month m(2016, 6);
  const auto sa = a.scan(m);
  const auto sb = b.scan(m);
  EXPECT_EQ(sa.probe_attempts, sb.probe_attempts);
  EXPECT_EQ(sa.probe_retries, sb.probe_retries);
  EXPECT_EQ(sa.probes_abandoned, sb.probes_abandoned);
  EXPECT_DOUBLE_EQ(sa.scanned, sb.scanned);
  EXPECT_DOUBLE_EQ(sa.unreachable, sb.unreachable);
  EXPECT_DOUBLE_EQ(sa.ssl3_support, sb.ssl3_support);

  tls::scan::ScanPolicy other = policy;
  other.seed = policy.seed + 1;
  const tls::scan::ActiveScanner c(servers, other);
  const auto sc = c.scan(m);
  EXPECT_NE(sa.unreachable, sc.unreachable);
}

TEST(Soak, IdealPolicyMatchesDefaultScanner) {
  const auto servers = tls::servers::ServerPopulation::standard();
  const tls::scan::ActiveScanner plain(servers);
  tls::scan::ScanPolicy ideal;
  ideal.network = tls::faults::NetworkProfile::lossy(0.0);
  const tls::scan::ActiveScanner tapped(servers, ideal);
  const Month m(2016, 1);
  const auto a = plain.scan(m);
  const auto b = tapped.scan(m);
  EXPECT_DOUBLE_EQ(a.ssl3_support, b.ssl3_support);
  EXPECT_DOUBLE_EQ(a.export_support, b.export_support);
  EXPECT_DOUBLE_EQ(a.chooses_aead, b.chooses_aead);
  EXPECT_DOUBLE_EQ(a.heartbleed_vulnerable, b.heartbleed_vulnerable);
  EXPECT_DOUBLE_EQ(a.scanned, b.scanned);
}

}  // namespace
