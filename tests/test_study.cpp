// Integration tests: the full pipeline on a reduced window / connection
// budget. These assert the qualitative claims of the paper hold in the
// regenerated data — trends, crossovers, orderings — not absolute values.
#include <gtest/gtest.h>

#include "core/study.hpp"

namespace tls::study {
namespace {

using tls::core::Month;

StudyOptions fast_options() {
  StudyOptions o;
  o.connections_per_month = 2500;
  o.full_catalog = false;
  return o;
}

double at(const tls::analysis::MonthlyChart& c, std::size_t series, Month m) {
  return c.series[series].values[static_cast<std::size_t>(
      m - c.range.begin_month)];
}

class StudyTest : public ::testing::Test {
 protected:
  static LongitudinalStudy& study() {
    static auto* s = new LongitudinalStudy(fast_options());
    return *s;
  }
};

TEST_F(StudyTest, DatabaseBuiltFromCatalog) {
  EXPECT_GT(study().database().size(), 80u);
  EXPECT_EQ(study().monitor().malformed_hellos(), 0u);
}

TEST_F(StudyTest, Figure1VersionMigration) {
  const auto c = study().figure1_versions();
  ASSERT_EQ(c.series.size(), 4u);
  // TLS 1.0 dominates 2012, TLS 1.2 dominates 2018.
  EXPECT_GT(at(c, 1, Month(2012, 3)), 90.0);
  EXPECT_GT(at(c, 3, Month(2018, 3)), 80.0);
  EXPECT_LT(at(c, 1, Month(2018, 3)), 15.0);
  // Crossover happens mid-study.
  EXPECT_LT(at(c, 3, Month(2013, 6)), 50.0);
  EXPECT_GT(at(c, 3, Month(2015, 6)), 50.0);
}

TEST_F(StudyTest, Figure2CipherClassMigration) {
  const auto c = study().figure2_negotiated_classes();
  // RC4 dies; AEAD wins; CBC declines after Aug 2015.
  EXPECT_GT(at(c, 2, Month(2013, 8)), 30.0);
  EXPECT_LT(at(c, 2, Month(2018, 3)), 1.0);
  EXPECT_LT(at(c, 0, Month(2013, 1)), 5.0);
  EXPECT_GT(at(c, 0, Month(2018, 3)), 70.0);
  EXPECT_GT(at(c, 1, Month(2015, 8)), at(c, 1, Month(2018, 3)));
}

TEST_F(StudyTest, Figure3AdvertisingLagsNegotiation) {
  const auto adv = study().figure3_advertised_classes();
  const auto neg = study().figure2_negotiated_classes();
  // In 2016 RC4 advertising (slow updaters) exceeds RC4 negotiation.
  EXPECT_GT(at(adv, 1, Month(2016, 6)), at(neg, 2, Month(2016, 6)));
  // 3DES advertised by the majority even in 2018 (§5.6).
  EXPECT_GT(at(adv, 3, Month(2018, 3)), 50.0);
}

TEST_F(StudyTest, Figure5PositionsOrdered) {
  const auto c = study().figure5_relative_positions();
  const Month m(2016, 6);
  // AEAD/CBC near the top; RC4 mid; 3DES near the bottom (Fig. 5).
  EXPECT_LT(at(c, 0, m), at(c, 2, m));
  EXPECT_LT(at(c, 1, m), at(c, 2, m));
  EXPECT_LT(at(c, 2, m), at(c, 4, m));
}

TEST_F(StudyTest, Figure8ForwardSecrecyShift) {
  const auto c = study().figure8_key_exchange();
  // RSA dominates 2012; ECDHE dominates 2017+.
  EXPECT_GT(at(c, 2, Month(2012, 6)), 50.0);
  EXPECT_GT(at(c, 1, Month(2017, 6)), 60.0);
  EXPECT_LT(at(c, 2, Month(2018, 3)), 25.0);
  // DHE never dominant.
  for (const auto v : c.series[0].values) EXPECT_LT(v, 25.0);
}

TEST_F(StudyTest, Figure9Aes128Dominates) {
  const auto c = study().figure9_aead_negotiated();
  const Month m(2017, 6);
  EXPECT_GT(at(c, 1, m), at(c, 2, m));  // 128-GCM > 256-GCM
  EXPECT_GT(at(c, 1, m), at(c, 3, m));  // 128-GCM > ChaCha
}

TEST_F(StudyTest, PercentagesAreBounded) {
  for (const auto& chart :
       {study().figure1_versions(), study().figure2_negotiated_classes(),
        study().figure3_advertised_classes(),
        study().figure7_weak_advertised(), study().figure8_key_exchange(),
        study().figure10_aead_advertised()}) {
    for (const auto& s : chart.series) {
      for (const auto v : s.values) {
        EXPECT_GE(v, 0.0) << chart.title << " " << s.name;
        EXPECT_LE(v, 100.0) << chart.title << " " << s.name;
      }
    }
  }
}

TEST_F(StudyTest, SeriesSpanTheWindow) {
  const auto c = study().figure1_versions();
  EXPECT_EQ(c.range.begin_month, tls::core::notary_window().begin_month);
  for (const auto& s : c.series) {
    EXPECT_EQ(static_cast<int>(s.values.size()), c.range.size());
  }
  // Figures 4/5 start at the fingerprint feature introduction.
  EXPECT_EQ(study().figure4_fingerprint_support().range.begin_month,
            tls::notary::PassiveMonitor::fp_start());
}

TEST_F(StudyTest, MonthlySeriesProjector) {
  auto s = study().monthly_series("fallbacks", [](const auto& m) {
    return static_cast<double>(m.fallbacks);
  });
  EXPECT_EQ(static_cast<int>(s.values.size()),
            study().options().window.size());
}

TEST(StudyDeterminism, SameSeedSameFigures) {
  StudyOptions o = fast_options();
  o.connections_per_month = 800;
  o.window = {Month(2014, 1), Month(2015, 6)};
  LongitudinalStudy a(o), b(o);
  const auto ca = a.figure2_negotiated_classes();
  const auto cb = b.figure2_negotiated_classes();
  for (std::size_t i = 0; i < ca.series.size(); ++i) {
    EXPECT_EQ(ca.series[i].values, cb.series[i].values);
  }
}

TEST(StudyDeterminism, DifferentSeedSameShape) {
  StudyOptions o = fast_options();
  o.connections_per_month = 2000;
  o.window = {Month(2014, 1), Month(2015, 6)};
  LongitudinalStudy a(o);
  o.seed = 777;
  LongitudinalStudy b(o);
  const auto ca = a.figure2_negotiated_classes();
  const auto cb = b.figure2_negotiated_classes();
  // Values differ but within sampling noise.
  for (std::size_t i = 0; i < ca.series.size(); ++i) {
    for (std::size_t j = 0; j < ca.series[i].values.size(); ++j) {
      EXPECT_NEAR(ca.series[i].values[j], cb.series[i].values[j], 6.0);
    }
  }
}

TEST(StudyWindow, RespectsCustomWindow) {
  StudyOptions o = fast_options();
  o.connections_per_month = 500;
  o.window = {Month(2016, 1), Month(2016, 12)};
  LongitudinalStudy s(o);
  EXPECT_EQ(s.monitor().months().size(), 12u);
  EXPECT_EQ(s.monitor().months().begin()->first, Month(2016, 1));
}

TEST(AttackMarkers, CoverHeadlineAttacks) {
  const auto markers = attack_markers();
  EXPECT_GE(markers.size(), 7u);
}

}  // namespace
}  // namespace tls::study
