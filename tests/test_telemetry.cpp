// The telemetry layer's two contracts: (1) registry semantics — bucket
// boundaries, commutative/associative merges, timing-metric exclusion from
// the deterministic digest; (2) the never-perturb rule — enabling
// telemetry may not change one exported CSV byte at any thread count or
// fault rate, and the non-timing registry subset must itself be
// thread-count independent. Plus format validation for the three exports
// (METRICS.json syntax, Prometheus exposition lint, Chrome trace schema).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/shard.hpp"
#include "core/study.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using tls::core::Month;
using tls::telemetry::Histogram;
using tls::telemetry::MetricsRegistry;
using tls::telemetry::TraceEvent;
using tls::telemetry::TraceRecorder;

// ---- histogram semantics ----

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h;
  h.bounds = {10, 100};
  h.record(0);
  h.record(10);   // <= 10 -> bucket 0
  h.record(11);   // -> bucket 1
  h.record(100);  // <= 100 -> bucket 1
  h.record(101);  // -> +Inf bucket
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 0u + 10 + 11 + 100 + 101);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 101u);
}

TEST(Histogram, MergeIsCommutative) {
  Histogram a, b;
  a.bounds = b.bounds = {10, 100};
  a.record(5);
  a.record(50);
  b.record(500);
  b.record(7);

  Histogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.counts, ba.counts);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.min, ba.min);
  EXPECT_EQ(ab.max, ba.max);
}

TEST(Histogram, MergeIntoEmptyAdoptsMinMax) {
  Histogram a, b;
  a.bounds = b.bounds = {10};
  b.record(3);
  b.record(42);
  a.merge(b);
  EXPECT_EQ(a.min, 3u);
  EXPECT_EQ(a.max, 42u);
  EXPECT_EQ(a.count, 2u);
}

// ---- registry semantics ----

MetricsRegistry make_registry(std::uint64_t counter_v, std::uint64_t gauge_v,
                              std::initializer_list<std::uint64_t> samples) {
  MetricsRegistry r;
  r.counter("c_total").add(counter_v);
  r.gauge("g").set(gauge_v);
  auto& h = r.histogram("h_us", {10, 100});
  for (const auto s : samples) h.record(s);
  return r;
}

std::string digest_of(const MetricsRegistry& r) {
  return tls::telemetry::deterministic_digest(r);
}

TEST(MetricsRegistry, MergeIsCommutativeAndAssociative) {
  const auto a = make_registry(1, 5, {3});
  const auto b = make_registry(10, 2, {50, 5000});
  const auto c = make_registry(100, 9, {});

  MetricsRegistry ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  MetricsRegistry c_ba;  // c + (b + a)
  MetricsRegistry ba;
  ba.merge(b);
  ba.merge(a);
  c_ba.merge(c);
  c_ba.merge(ba);
  EXPECT_EQ(digest_of(ab_c), digest_of(c_ba));

  const auto* m = ab_c.find("c_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->counter.value, 111u);  // counters add
  const auto* g = ab_c.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge.value, 9u);  // gauges keep the max
}

TEST(MetricsRegistry, LabeledVariantsAreDistinctMetrics) {
  MetricsRegistry r;
  r.counter("x_total", "kind=\"a\"").add(1);
  r.counter("x_total", "kind=\"b\"").add(2);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.find("x_total", "kind=\"a\"")->counter.value, 1u);
  EXPECT_EQ(r.find("x_total", "kind=\"b\"")->counter.value, 2u);
}

TEST(MetricsRegistry, DeterministicDigestExcludesTimingMetrics) {
  MetricsRegistry a = make_registry(7, 1, {20});
  MetricsRegistry b = make_registry(7, 1, {20});
  a.counter("wall_us", "", "", /*timing=*/true).add(123456);
  b.counter("wall_us", "", "", /*timing=*/true).add(999);
  EXPECT_EQ(digest_of(a), digest_of(b));
  // ...but the full exports do differ.
  EXPECT_NE(tls::telemetry::to_metrics_json(a),
            tls::telemetry::to_metrics_json(b));
}

// ---- export formats ----

TEST(TelemetryExport, PrometheusGoldenFile) {
  MetricsRegistry r;
  r.counter("tls_repro_demo_total", "", "A demo counter").add(3);
  r.counter("tls_repro_labeled_total", "kind=\"x\"").add(1);
  auto& h = r.histogram("tls_repro_demo_us", {10, 100}, "", "A demo timer");
  h.record(5);
  h.record(50);
  h.record(5000);
  const std::string expected =
      "# HELP tls_repro_demo_total A demo counter\n"
      "# TYPE tls_repro_demo_total counter\n"
      "tls_repro_demo_total 3\n"
      "# HELP tls_repro_demo_us A demo timer\n"
      "# UNIT tls_repro_demo_us microseconds\n"
      "# TYPE tls_repro_demo_us histogram\n"
      "tls_repro_demo_us_bucket{le=\"10\"} 1\n"
      "tls_repro_demo_us_bucket{le=\"100\"} 2\n"
      "tls_repro_demo_us_bucket{le=\"+Inf\"} 3\n"
      "tls_repro_demo_us_sum 5055\n"
      "tls_repro_demo_us_count 3\n"
      "# TYPE tls_repro_labeled_total counter\n"
      "tls_repro_labeled_total{kind=\"x\"} 1\n";
  EXPECT_EQ(tls::telemetry::to_prometheus(r), expected);
}

TEST(TelemetryExport, LintAcceptsOwnOutputAndRejectsMalformed) {
  MetricsRegistry r;
  r.counter("good_total", "kind=\"a\"").add(1);
  r.histogram("good_us", {10}).record(4);
  const auto own = tls::telemetry::to_prometheus(r);
  EXPECT_TRUE(tls::telemetry::lint_prometheus(own).empty())
      << own;

  // Sample before any TYPE declaration.
  EXPECT_FALSE(tls::telemetry::lint_prometheus("orphan_total 1\n").empty());
  // Bad metric name.
  EXPECT_FALSE(tls::telemetry::lint_prometheus("# TYPE 9bad counter\n9bad 1\n")
                   .empty());
  // Histogram family missing +Inf/_sum/_count.
  EXPECT_FALSE(tls::telemetry::lint_prometheus(
                   "# TYPE h histogram\nh_bucket{le=\"10\"} 1\n")
                   .empty());
  // Malformed label body.
  EXPECT_FALSE(tls::telemetry::lint_prometheus(
                   "# TYPE x counter\nx{kind=unquoted} 1\n")
                   .empty());
  // Non-numeric sample value.
  EXPECT_FALSE(
      tls::telemetry::lint_prometheus("# TYPE x counter\nx banana\n").empty());
  // Interleaved families.
  EXPECT_FALSE(tls::telemetry::lint_prometheus("# TYPE a counter\na 1\n"
                                               "# TYPE b counter\nb 1\n"
                                               "# TYPE a counter\na 2\n")
                   .empty());
}

TEST(TelemetryExport, LintUnitMetadataMatrix) {
  // Well-formed UNIT line between HELP and TYPE is accepted.
  EXPECT_TRUE(tls::telemetry::lint_prometheus(
                  "# HELP lat_us A timer\n"
                  "# UNIT lat_us microseconds\n"
                  "# TYPE lat_us gauge\n"
                  "lat_us 5\n")
                  .empty());
  // UNIT alone (no HELP) is fine too.
  EXPECT_TRUE(tls::telemetry::lint_prometheus("# UNIT x_ms milliseconds\n"
                                              "# TYPE x_ms gauge\nx_ms 1\n")
                  .empty());
  // Bad metric name in UNIT.
  EXPECT_FALSE(tls::telemetry::lint_prometheus("# UNIT 9bad seconds\n"
                                               "# TYPE x counter\nx 1\n")
                   .empty());
  // Missing unit token.
  EXPECT_FALSE(tls::telemetry::lint_prometheus("# UNIT lat_us\n"
                                               "# TYPE lat_us gauge\n"
                                               "lat_us 1\n")
                   .empty());
  // Trailing junk after the unit token.
  EXPECT_FALSE(tls::telemetry::lint_prometheus(
                   "# UNIT lat_us microseconds approximately\n"
                   "# TYPE lat_us gauge\nlat_us 1\n")
                   .empty());
  // The exporter emits UNIT for suffixed names and its output self-lints.
  MetricsRegistry r;
  r.histogram("stage_us", {10, 100}).record(7);
  r.counter("payload_bytes").add(42);
  const auto own = tls::telemetry::to_prometheus(r);
  EXPECT_NE(own.find("# UNIT stage_us microseconds"), std::string::npos)
      << own;
  EXPECT_NE(own.find("# UNIT payload_bytes bytes"), std::string::npos) << own;
  EXPECT_TRUE(tls::telemetry::lint_prometheus(own).empty()) << own;
}

TEST(MetricsRegistry, LogLinearBucketProperties) {
  const auto buckets = tls::telemetry::log_linear_buckets(1, 64'000'000, 4);
  ASSERT_FALSE(buckets.empty());
  // Strictly increasing with no duplicates.
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]) << "at index " << i;
  }
  // Bounded relative error: consecutive bounds within one subdivision's
  // ratio, so any recorded value lands in a bucket whose upper bound is
  // at most ~25% above it (subdiv=4).
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LE(buckets[i], buckets[i - 1] * 2) << "at index " << i;
  }
  // Covers the full requested range: the first bound is within one octave
  // of `lo` (bounds are exclusive lower / inclusive upper, so a value of
  // exactly `lo` lands in the first bucket), the last reaches past `hi`.
  EXPECT_LE(buckets.front(), 2u);
  EXPECT_GE(buckets.back(), 64'000'000u);
  // The daemon's wide-range flavor is exactly this shape.
  EXPECT_EQ(tls::telemetry::wide_latency_buckets_us(), buckets);
  // Degenerate requests still produce a usable ladder.
  const auto tiny = tls::telemetry::log_linear_buckets(1, 2, 4);
  EXPECT_FALSE(tiny.empty());
  for (std::size_t i = 1; i < tiny.size(); ++i) {
    EXPECT_LT(tiny[i - 1], tiny[i]);
  }
}

TEST(TelemetryExport, MetricsJsonIsSyntacticallyValid) {
  MetricsRegistry r;
  r.counter("with_escapes_total", "", "quote \" backslash \\ done").add(1);
  r.histogram("h_us", {10}).record(3);
  const auto json = tls::telemetry::to_metrics_json(r);
  EXPECT_TRUE(tls::telemetry::json_syntax_valid(json)) << json;
  EXPECT_FALSE(tls::telemetry::json_syntax_valid("{\"unclosed\": [1, 2"));
  EXPECT_FALSE(tls::telemetry::json_syntax_valid("{} trailing"));
}

TEST(TelemetryExport, RunReportListsEveryMetric) {
  MetricsRegistry r;
  r.counter("a_total").add(7);
  r.histogram("b_us", {10}).record(3);
  const auto report = tls::telemetry::render_run_report(r);
  EXPECT_NE(report.find("a_total"), std::string::npos);
  EXPECT_NE(report.find("b_us"), std::string::npos);
  EXPECT_NE(report.find("n=1"), std::string::npos);
}

// ---- trace recorder / spans ----

TEST(Trace, SpanAgainstNullRecorderIsNoOp) {
  tls::telemetry::Span span(nullptr, "x", "y", 0);
  span.arg("k", 1);
  span.close();  // must not crash
}

TEST(Trace, ToJsonNormalizesTimestampsAndValidates) {
  TraceRecorder rec;
  rec.add({"late", "cat", 1500, 20, 1, {{"n", 42}}});
  rec.add({"early \"quoted\"", "cat", 1000, 5, 0, {}});
  const auto json = rec.to_json();
  EXPECT_TRUE(tls::telemetry::json_syntax_valid(json)) << json;
  // Earliest event shifts to ts 0; the later one keeps the delta.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500"), std::string::npos);
  for (const char* key : {"\"name\"", "\"cat\"", "\"ph\":\"X\"", "\"pid\"",
                          "\"tid\"", "\"dur\"", "\"traceEvents\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Trace, SpanRecordsOneCompleteEvent) {
  TraceRecorder rec;
  {
    tls::telemetry::Span span(&rec, "work", "test", 3);
    span.arg("items", 9);
  }
  ASSERT_EQ(rec.events().size(), 1u);
  const auto& e = rec.events().front();
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.tid, 3u);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].second, 9u);
}

// ---- the never-perturb contract on the full study pipeline ----

tls::study::StudyOptions tiny_options() {
  tls::study::StudyOptions o;
  o.connections_per_month = 600;
  o.full_catalog = false;
  o.window = {Month(2014, 6), Month(2015, 3)};
  o.shards_per_month = 4;
  return o;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Exports all 11 CSVs into a fresh directory, returns path -> bytes
/// keyed by file name (directory-independent).
std::map<std::string, std::string> export_bytes(tls::study::StudyOptions o,
                                                const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("tls_tel_test_" + tag);
  std::filesystem::remove_all(dir);
  tls::study::LongitudinalStudy study(o);
  std::map<std::string, std::string> bytes;
  for (const auto& path : study.export_figures(dir.string())) {
    bytes[std::filesystem::path(path).filename().string()] = slurp(path);
  }
  std::filesystem::remove_all(dir);
  return bytes;
}

TEST(TelemetryNeverPerturbs, AllCsvExportsByteIdenticalOnOffAcrossThreads) {
  const auto base = tiny_options();
  for (const double fault_rate : {0.0, 0.10}) {
    // Reference: telemetry off, serial, at this fault rate.
    auto ref_o = base;
    ref_o.faults.bit_flip = fault_rate;
    const std::string suffix = fault_rate > 0 ? "f" : "c";
    const auto want = export_bytes(ref_o, "ref" + suffix);
    ASSERT_EQ(want.size(), 11u);  // 10 figures + the active-scan series
    for (const unsigned threads : {0u, 1u, 8u}) {
      for (const bool telemetry : {false, true}) {
        if (threads == 0 && !telemetry) continue;  // that IS the reference
        auto o = ref_o;
        o.threads = threads;
        o.telemetry = telemetry;
        const auto got = export_bytes(
            o, "t" + std::to_string(threads) + (telemetry ? "y" : "n") +
                   suffix);
        ASSERT_EQ(got.size(), want.size());
        for (const auto& [name, data] : want) {
          const auto it = got.find(name);
          ASSERT_NE(it, got.end()) << name;
          EXPECT_EQ(it->second, data)
              << name << " differs at threads=" << threads
              << " telemetry=" << telemetry << " faults=" << fault_rate;
        }
      }
    }
  }
}

TEST(TelemetryNeverPerturbs, DeterministicDigestThreadCountIndependent) {
  auto o = tiny_options();
  o.telemetry = true;
  o.faults.bit_flip = 0.10;  // exercise the fault counters too
  o.threads = 0;
  tls::study::LongitudinalStudy serial(o);
  o.threads = 8;
  tls::study::LongitudinalStudy parallel(o);
  const auto ds = tls::telemetry::deterministic_digest(serial.metrics());
  const auto dp = tls::telemetry::deterministic_digest(parallel.metrics());
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds, dp);
  // The deterministic subset must include the fault and path-split
  // counters (they are functions of the plan, not the schedule).
  EXPECT_NE(ds.find("tls_repro_faults_applied_total"), std::string::npos);
  EXPECT_NE(ds.find("tls_repro_notary_byte_path_total"), std::string::npos);
}

TEST(TelemetryStudy, MetricsAndTraceArePopulatedAndValid) {
  auto o = tiny_options();
  o.telemetry = true;
  tls::study::LongitudinalStudy study(o);
  study.run();
  const auto& reg = study.metrics();
  ASSERT_FALSE(reg.metrics().empty());
  const auto* tasks = reg.find("tls_repro_pipeline_shard_tasks_total");
  ASSERT_NE(tasks, nullptr);
  // 10 months x 4 shards, every shard non-empty at 600 cpm.
  EXPECT_EQ(tasks->counter.value, 40u);
  const auto* gen = reg.find("tls_repro_pipeline_generate_us");
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->histogram.count, 40u);
  EXPECT_TRUE(gen->timing);
  // Connections counter matches the monitor's own total.
  const auto* conns = reg.find("tls_repro_notary_connections_total");
  ASSERT_NE(conns, nullptr);
  EXPECT_EQ(conns->counter.value, study.monitor().total_connections());

  // Spans: one task span per shard task, valid Chrome JSON.
  const auto& trace = study.trace();
  std::size_t task_spans = 0;
  for (const auto& e : trace.events()) {
    if (e.name == "shard_task") ++task_spans;
  }
  EXPECT_EQ(task_spans, 40u);
  EXPECT_TRUE(tls::telemetry::json_syntax_valid(trace.to_json()));

  // All three exports are well-formed.
  EXPECT_TRUE(
      tls::telemetry::json_syntax_valid(tls::telemetry::to_metrics_json(reg)));
  EXPECT_TRUE(
      tls::telemetry::lint_prometheus(tls::telemetry::to_prometheus(reg))
          .empty());
}

TEST(TelemetryStudy, DisabledKeepsRegistryAndTraceEmpty) {
  auto o = tiny_options();
  tls::study::LongitudinalStudy study(o);
  study.run();
  EXPECT_TRUE(study.metrics().empty());
  EXPECT_TRUE(study.trace().empty());
}

// ---- resume: persisted stats stay exact, telemetry reports partial ----

TEST(TelemetryResume, CacheAndErrorStatsSurviveResumeAndPartialIsFlagged) {
  const auto ckpt =
      std::filesystem::temp_directory_path() / "tls_tel_resume_ckpt";
  std::filesystem::remove_all(ckpt);
  auto o = tiny_options();
  o.telemetry = true;
  o.faults.bit_flip = 0.10;   // non-zero taxonomy totals
  o.fast_observe = false;     // clean events hit the ObserveCache too
  o.checkpoint_dir = ckpt.string();

  std::uint64_t cold_errors = 0, cold_cache_lookups = 0;
  {
    tls::study::LongitudinalStudy cold(o);
    cold.run();
    cold_errors = cold.monitor().errors().total();
    const auto& cs = cold.monitor().observe_cache_stats();
    cold_cache_lookups = cs.client.hits + cs.client.misses;
    EXPECT_GT(cold_errors, 0u);
    EXPECT_GT(cold_cache_lookups, 0u);
    EXPECT_FALSE(cold.recovery().telemetry_partial);
  }
  o.resume = true;
  {
    tls::study::LongitudinalStudy resumed(o);
    resumed.run();
    // Snapshot frames persist cache + taxonomy state: the resumed monitor
    // reports exactly the cold run's numbers (ISSUE'd as a silent
    // undercount; the codec actually round-trips them — prove it).
    EXPECT_EQ(resumed.monitor().errors().total(), cold_errors);
    const auto& cs = resumed.monitor().observe_cache_stats();
    EXPECT_EQ(cs.client.hits + cs.client.misses, cold_cache_lookups);
    // The registry's own timings/fault counters are NOT frame-persisted:
    // a resumed run must say so.
    const auto report = resumed.recovery();
    EXPECT_TRUE(report.resumed);
    EXPECT_GT(report.tasks_skipped, 0u);
    EXPECT_TRUE(report.telemetry_partial);
    const auto table = tls::analysis::render_recovery_table(report);
    EXPECT_NE(table.find("partial since resume"), std::string::npos);
    const auto* flag = resumed.metrics().find("tls_repro_telemetry_partial");
    ASSERT_NE(flag, nullptr);
    EXPECT_EQ(flag->gauge.value, 1u);
  }
  std::filesystem::remove_all(ckpt);
}

// ---- thread pool accounting ----

TEST(ThreadPoolStats, CountsTasksAndGrids) {
  tls::core::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.run(10, [&](std::size_t) { ran.fetch_add(1); });
  pool.run(5, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 15);
  const auto s = pool.stats();
  EXPECT_EQ(s.grids, 2u);
  EXPECT_EQ(s.tasks, 15u);
  EXPECT_GE(s.busy_us, 0u);

  tls::core::ThreadPool serial(0);
  serial.run(3, [](std::size_t) {});
  EXPECT_EQ(serial.stats().tasks, 3u);
  EXPECT_EQ(serial.stats().grids, 1u);
}

}  // namespace
