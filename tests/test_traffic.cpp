#include <gtest/gtest.h>

#include "population/traffic.hpp"

namespace tls::population {
namespace {

using tls::core::Month;

struct Fixture {
  tls::clients::Catalog catalog = tls::clients::Catalog::core_only();
  tls::servers::ServerPopulation servers =
      tls::servers::ServerPopulation::standard();
  MarketModel market = MarketModel::standard(catalog);
};

TEST(Traffic, GeneratesRequestedCount) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 1);
  int count = 0;
  gen.generate_month(Month(2015, 6), 500,
                     [&](const ConnectionEvent&) { ++count; });
  EXPECT_EQ(count, 500);
}

TEST(Traffic, DeterministicForSameSeed) {
  Fixture f;
  const auto run = [&](std::uint64_t seed) {
    TrafficGenerator gen(f.market, f.servers, seed);
    std::uint64_t acc = 0;
    gen.generate_month(Month(2015, 6), 300, [&](const ConnectionEvent& ev) {
      acc = acc * 31 + ev.result.negotiated_cipher + ev.hello.cipher_suites.size();
    });
    return acc;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(Traffic, SpecialClientsReachTheirDestinations) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 3);
  bool saw_grid_mismatch = false;
  int grid_events = 0;
  gen.generate_range({Month(2014, 1), Month(2014, 6)}, 2000,
                     [&](const ConnectionEvent& ev) {
                       if (ev.client->name == "GridFTP") {
                         ++grid_events;
                         if (!ev.server->name.starts_with("grid")) {
                           saw_grid_mismatch = true;
                         }
                       } else {
                         if (ev.server->name.starts_with("grid")) {
                           saw_grid_mismatch = true;
                         }
                       }
                     });
  EXPECT_GT(grid_events, 0);
  EXPECT_FALSE(saw_grid_mismatch);
}

TEST(Traffic, GridNegotiatesNullCiphers) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 4);
  int grid = 0, null_negotiated = 0;
  gen.generate_month(Month(2013, 6), 5000, [&](const ConnectionEvent& ev) {
    if (ev.client->name != "GridFTP" || !ev.result.success) return;
    ++grid;
    const auto* s = tls::core::find_cipher_suite(ev.result.negotiated_cipher);
    null_negotiated += s != nullptr && tls::core::is_null_cipher(*s);
  });
  ASSERT_GT(grid, 10);
  // GRID endpoints prefer NULL; nearly all GRID connections use it (§6.1).
  EXPECT_GT(static_cast<double>(null_negotiated) / grid, 0.95);
}

TEST(Traffic, InterwiseSessionsCompleteDespiteViolation) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 5);
  int interwise = 0, violations = 0, successes = 0;
  gen.generate_range({Month(2013, 1), Month(2014, 12)}, 3000,
                     [&](const ConnectionEvent& ev) {
                       if (ev.client->name != "Interwise") return;
                       ++interwise;
                       violations += ev.result.spec_violation;
                       successes += ev.result.success;
                     });
  ASSERT_GT(interwise, 0);
  EXPECT_EQ(violations, interwise);
  EXPECT_EQ(successes, interwise);
}

TEST(Traffic, SslV2OnlyFromNagios) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 6);
  int sslv2 = 0;
  gen.generate_range({Month(2017, 1), Month(2018, 4)}, 4000,
                     [&](const ConnectionEvent& ev) {
                       if (ev.sslv2) {
                         ++sslv2;
                         EXPECT_EQ(ev.client->name, "Nagios NRPE");
                       }
                     });
  EXPECT_GT(sslv2, 0);
}

TEST(Traffic, FallbackTriggersForLegacyServers) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 7);
  int fallbacks = 0, fallback_success = 0;
  gen.generate_month(Month(2013, 6), 20000, [&](const ConnectionEvent& ev) {
    if (!ev.used_fallback) return;
    ++fallbacks;
    fallback_success += ev.result.success;
    // Fallback only happens toward servers older than the client.
    EXPECT_LT(ev.server->config.max_version, 0x0303);
  });
  EXPECT_GT(fallbacks, 0);
  EXPECT_EQ(fallbacks, fallback_success);
}

TEST(Traffic, FallbackScsvAppearsAfterRfc7507) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 8);
  bool early_scsv = false;
  bool late_scsv = false;
  const auto has_scsv = [](const ConnectionEvent& ev) {
    return std::find(ev.hello.cipher_suites.begin(),
                     ev.hello.cipher_suites.end(),
                     tls::core::suites::TLS_FALLBACK_SCSV) !=
           ev.hello.cipher_suites.end();
  };
  gen.generate_month(Month(2013, 6), 20000, [&](const ConnectionEvent& ev) {
    if (ev.used_fallback && has_scsv(ev)) early_scsv = true;
  });
  gen.generate_month(Month(2015, 9), 20000, [&](const ConnectionEvent& ev) {
    if (ev.used_fallback && has_scsv(ev)) late_scsv = true;
  });
  EXPECT_FALSE(early_scsv);
  EXPECT_TRUE(late_scsv);
}

// The GenCache template fast path must emit events field-identical to the
// legacy build-every-hello path, from the same seed, across the 2015-04
// FALLBACK_SCSV boundary (the fallback leg's SCSV branch switches there).
// The full catalog exercises the GREASE/shuffle bypass configs too.
TEST(Traffic, GenCacheEventsMatchLegacyFieldByField) {
  tls::clients::Catalog catalog = tls::clients::Catalog::standard();
  tls::servers::ServerPopulation servers =
      tls::servers::ServerPopulation::standard();
  MarketModel market = MarketModel::standard(catalog);
  for (const Month m :
       {Month(2015, 2), Month(2015, 3), Month(2015, 4), Month(2015, 9)}) {
    TrafficGenerator fast(market, servers, 77);
    TrafficGenerator legacy(market, servers, 77);
    fast.set_gen_cache(true);
    legacy.set_gen_cache(false);
    std::vector<ConnectionEvent> a;
    std::vector<ConnectionEvent> b;
    fast.generate_month(m, 1500,
                        [&](const ConnectionEvent& ev) { a.push_back(ev); });
    legacy.generate_month(m, 1500,
                          [&](const ConnectionEvent& ev) { b.push_back(ev); });
    ASSERT_EQ(a.size(), b.size());
    bool saw_fast_record = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const ConnectionEvent& f = a[i];
      const ConnectionEvent& l = b[i];
      ASSERT_EQ(f.month.index(), l.month.index()) << i;
      ASSERT_EQ(f.day.year(), l.day.year()) << i;
      ASSERT_EQ(f.day.month(), l.day.month()) << i;
      ASSERT_EQ(f.day.day(), l.day.day()) << i;
      ASSERT_EQ(f.client, l.client) << i;
      ASSERT_EQ(f.config, l.config) << i;
      ASSERT_EQ(f.server, l.server) << i;
      ASSERT_EQ(f.sslv2, l.sslv2) << i;
      ASSERT_EQ(f.used_fallback, l.used_fallback) << i;
      if (f.sslv2) continue;  // hello/result unspecified for SSLv2 events
      ASSERT_TRUE(f.hello == l.hello) << i;
      ASSERT_EQ(f.result.success, l.result.success) << i;
      ASSERT_EQ(f.result.failure, l.result.failure) << i;
      ASSERT_EQ(f.result.server_hello, l.result.server_hello) << i;
      ASSERT_EQ(f.result.negotiated_version, l.result.negotiated_version)
          << i;
      ASSERT_EQ(f.result.negotiated_cipher, l.result.negotiated_cipher) << i;
      ASSERT_EQ(f.result.negotiated_group, l.result.negotiated_group) << i;
      ASSERT_EQ(f.result.spec_violation, l.result.spec_violation) << i;
      ASSERT_EQ(f.result.heartbeat_negotiated, l.result.heartbeat_negotiated)
          << i;
      ASSERT_EQ(f.result.resumed, l.result.resumed) << i;
      // Legacy path never pre-serializes; the fast path's bytes must match
      // a from-scratch serialization of the (identical) hello.
      ASSERT_TRUE(l.client_record.empty()) << i;
      if (!f.client_record.empty()) {
        saw_fast_record = true;
        ASSERT_EQ(f.client_record, f.hello.serialize_record()) << i;
      }
    }
    EXPECT_TRUE(saw_fast_record);
  }
}

TEST(Traffic, EventDayWithinMonth) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 9);
  gen.generate_month(Month(2015, 2), 1000, [&](const ConnectionEvent& ev) {
    EXPECT_EQ(ev.day.year(), 2015);
    EXPECT_EQ(ev.day.month(), 2);
    EXPECT_GE(ev.day.day(), 1);
    EXPECT_LE(ev.day.day(), 28);
  });
}

}  // namespace
}  // namespace tls::population
