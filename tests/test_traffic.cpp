#include <gtest/gtest.h>

#include "population/traffic.hpp"

namespace tls::population {
namespace {

using tls::core::Month;

struct Fixture {
  tls::clients::Catalog catalog = tls::clients::Catalog::core_only();
  tls::servers::ServerPopulation servers =
      tls::servers::ServerPopulation::standard();
  MarketModel market = MarketModel::standard(catalog);
};

TEST(Traffic, GeneratesRequestedCount) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 1);
  int count = 0;
  gen.generate_month(Month(2015, 6), 500,
                     [&](const ConnectionEvent&) { ++count; });
  EXPECT_EQ(count, 500);
}

TEST(Traffic, DeterministicForSameSeed) {
  Fixture f;
  const auto run = [&](std::uint64_t seed) {
    TrafficGenerator gen(f.market, f.servers, seed);
    std::uint64_t acc = 0;
    gen.generate_month(Month(2015, 6), 300, [&](const ConnectionEvent& ev) {
      acc = acc * 31 + ev.result.negotiated_cipher + ev.hello.cipher_suites.size();
    });
    return acc;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(Traffic, SpecialClientsReachTheirDestinations) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 3);
  bool saw_grid_mismatch = false;
  int grid_events = 0;
  gen.generate_range({Month(2014, 1), Month(2014, 6)}, 2000,
                     [&](const ConnectionEvent& ev) {
                       if (ev.client->name == "GridFTP") {
                         ++grid_events;
                         if (!ev.server->name.starts_with("grid")) {
                           saw_grid_mismatch = true;
                         }
                       } else {
                         if (ev.server->name.starts_with("grid")) {
                           saw_grid_mismatch = true;
                         }
                       }
                     });
  EXPECT_GT(grid_events, 0);
  EXPECT_FALSE(saw_grid_mismatch);
}

TEST(Traffic, GridNegotiatesNullCiphers) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 4);
  int grid = 0, null_negotiated = 0;
  gen.generate_month(Month(2013, 6), 5000, [&](const ConnectionEvent& ev) {
    if (ev.client->name != "GridFTP" || !ev.result.success) return;
    ++grid;
    const auto* s = tls::core::find_cipher_suite(ev.result.negotiated_cipher);
    null_negotiated += s != nullptr && tls::core::is_null_cipher(*s);
  });
  ASSERT_GT(grid, 10);
  // GRID endpoints prefer NULL; nearly all GRID connections use it (§6.1).
  EXPECT_GT(static_cast<double>(null_negotiated) / grid, 0.95);
}

TEST(Traffic, InterwiseSessionsCompleteDespiteViolation) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 5);
  int interwise = 0, violations = 0, successes = 0;
  gen.generate_range({Month(2013, 1), Month(2014, 12)}, 3000,
                     [&](const ConnectionEvent& ev) {
                       if (ev.client->name != "Interwise") return;
                       ++interwise;
                       violations += ev.result.spec_violation;
                       successes += ev.result.success;
                     });
  ASSERT_GT(interwise, 0);
  EXPECT_EQ(violations, interwise);
  EXPECT_EQ(successes, interwise);
}

TEST(Traffic, SslV2OnlyFromNagios) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 6);
  int sslv2 = 0;
  gen.generate_range({Month(2017, 1), Month(2018, 4)}, 4000,
                     [&](const ConnectionEvent& ev) {
                       if (ev.sslv2) {
                         ++sslv2;
                         EXPECT_EQ(ev.client->name, "Nagios NRPE");
                       }
                     });
  EXPECT_GT(sslv2, 0);
}

TEST(Traffic, FallbackTriggersForLegacyServers) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 7);
  int fallbacks = 0, fallback_success = 0;
  gen.generate_month(Month(2013, 6), 20000, [&](const ConnectionEvent& ev) {
    if (!ev.used_fallback) return;
    ++fallbacks;
    fallback_success += ev.result.success;
    // Fallback only happens toward servers older than the client.
    EXPECT_LT(ev.server->config.max_version, 0x0303);
  });
  EXPECT_GT(fallbacks, 0);
  EXPECT_EQ(fallbacks, fallback_success);
}

TEST(Traffic, FallbackScsvAppearsAfterRfc7507) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 8);
  bool early_scsv = false;
  bool late_scsv = false;
  const auto has_scsv = [](const ConnectionEvent& ev) {
    return std::find(ev.hello.cipher_suites.begin(),
                     ev.hello.cipher_suites.end(),
                     tls::core::suites::TLS_FALLBACK_SCSV) !=
           ev.hello.cipher_suites.end();
  };
  gen.generate_month(Month(2013, 6), 20000, [&](const ConnectionEvent& ev) {
    if (ev.used_fallback && has_scsv(ev)) early_scsv = true;
  });
  gen.generate_month(Month(2015, 9), 20000, [&](const ConnectionEvent& ev) {
    if (ev.used_fallback && has_scsv(ev)) late_scsv = true;
  });
  EXPECT_FALSE(early_scsv);
  EXPECT_TRUE(late_scsv);
}

TEST(Traffic, EventDayWithinMonth) {
  Fixture f;
  TrafficGenerator gen(f.market, f.servers, 9);
  gen.generate_month(Month(2015, 2), 1000, [&](const ConnectionEvent& ev) {
    EXPECT_EQ(ev.day.year(), 2015);
    EXPECT_EQ(ev.day.month(), 2);
    EXPECT_GE(ev.day.day(), 1);
    EXPECT_LE(ev.day.day(), 28);
  });
}

}  // namespace
}  // namespace tls::population
