#include <gtest/gtest.h>

#include "notary/monitor.hpp"
#include "population/traffic.hpp"
#include "wire/transcript.hpp"

namespace tls::wire {
namespace {

ClientHello sample_hello() {
  ClientHello ch;
  ch.legacy_version = 0x0303;
  ch.cipher_suites = {0xc02f, 0x002f};
  const std::uint16_t groups[] = {23};
  ch.extensions.push_back(make_supported_groups(groups));
  return ch;
}

TEST(Transcript, SuccessfulFlightsRoundTrip) {
  const auto ch = sample_hello();
  ServerHello sh;
  sh.legacy_version = 0x0303;
  sh.cipher_suite = 0xc02f;
  const auto ske = EcdheServerKeyExchange::stub(23);

  const auto client = client_flight(ch, /*established=*/true);
  const auto server = server_flight(sh, ske, /*established=*/true);

  const auto cf = parse_flight(client);
  ASSERT_TRUE(cf.client_hello.has_value());
  EXPECT_EQ(*cf.client_hello, ch);
  EXPECT_TRUE(cf.change_cipher_spec);
  EXPECT_EQ(cf.records.size(), 4u);  // CH, CKE, CCS, Finished

  const auto sf = parse_flight(server);
  ASSERT_TRUE(sf.server_hello.has_value());
  EXPECT_EQ(sf.server_hello->cipher_suite, 0xc02f);
  ASSERT_TRUE(sf.server_key_exchange.has_value());
  EXPECT_EQ(sf.server_key_exchange->named_curve, 23);
  EXPECT_EQ(sf.certificate_count, 1u);
  EXPECT_TRUE(sf.change_cipher_spec);
  EXPECT_FALSE(sf.alert.has_value());
}

TEST(Transcript, AnonymousSuiteSkipsCertificate) {
  ServerHello sh;
  sh.cipher_suite = 0x0034;  // DH_anon
  const auto sf = parse_flight(server_flight(sh, std::nullopt, true));
  EXPECT_EQ(sf.certificate_count, 0u);
}

TEST(Transcript, UnestablishedFlightHasNoCcs) {
  const auto cf = parse_flight(client_flight(sample_hello(), false));
  EXPECT_FALSE(cf.change_cipher_spec);
  EXPECT_EQ(cf.records.size(), 1u);
}

TEST(Transcript, FailureFlightCarriesAlert) {
  Alert alert;
  alert.description = AlertDescription::kHandshakeFailure;
  const auto sf = parse_flight(server_failure_flight(std::nullopt, alert));
  EXPECT_FALSE(sf.server_hello.has_value());
  ASSERT_TRUE(sf.alert.has_value());
  EXPECT_EQ(sf.alert->description, AlertDescription::kHandshakeFailure);
  EXPECT_FALSE(sf.change_cipher_spec);
}

TEST(Transcript, SpecViolationFailureKeepsServerHello) {
  ServerHello sh;
  sh.cipher_suite = 0x0081;  // GOST, unoffered
  Alert alert;
  alert.description = AlertDescription::kIllegalParameter;
  const auto sf = parse_flight(server_failure_flight(sh, alert));
  ASSERT_TRUE(sf.server_hello.has_value());
  EXPECT_EQ(sf.server_hello->cipher_suite, 0x0081);
  ASSERT_TRUE(sf.alert.has_value());
}

TEST(Transcript, CorruptHandshakeBodyTolerated) {
  // Valid record framing, garbage handshake inside: counted, not thrown.
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.fragment = {1, 0, 0, 50};  // ClientHello claiming 50 bytes, has 0
  const auto flight = parse_flight(rec.serialize());
  EXPECT_EQ(flight.unparsed_handshakes, 1u);
  EXPECT_FALSE(flight.client_hello.has_value());
}

TEST(Transcript, RecordLayerCorruptionThrows) {
  std::vector<std::uint8_t> bytes = sample_hello().serialize_record();
  bytes.resize(bytes.size() - 3);  // truncate mid-record
  EXPECT_THROW(parse_flight(bytes), ParseError);
}

TEST(Transcript, CertificateMessageBodyShape) {
  const auto body = certificate_message_body(2, 10);
  ByteReader r(body);
  ByteReader list(r.length_prefixed_u24());
  r.expect_empty("cert body");
  int certs = 0;
  while (!list.empty()) {
    const auto cert = list.length_prefixed_u24();
    EXPECT_EQ(cert.size(), 10u);
    ++certs;
  }
  EXPECT_EQ(certs, 2);
}

}  // namespace
}  // namespace tls::wire

namespace tls::population {
namespace {

using tls::core::Month;

TEST(TranscriptMode, AggregatesMatchDirectObservation) {
  // Feed the same generated connections through observe() and through
  // synthesize_flights()+observe_flights(); monthly aggregates must agree.
  const auto catalog = tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = MarketModel::standard(catalog);
  TrafficGenerator gen(market, servers, 17);

  tls::notary::PassiveMonitor direct, via_flights;
  gen.generate_range({Month(2015, 1), Month(2015, 6)}, 1500,
                     [&](const ConnectionEvent& ev) {
                       direct.observe(ev);
                       if (ev.sslv2) {
                         via_flights.observe_sslv2(ev.month);
                         return;
                       }
                       const auto flights = synthesize_flights(ev);
                       via_flights.observe_flights(ev.month, ev.day,
                                                   flights.client,
                                                   flights.server);
                     });

  ASSERT_EQ(direct.total_connections(), via_flights.total_connections());
  for (const auto& [m, a] : direct.months()) {
    const auto* b = via_flights.month(m);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a.total, b->total) << m.to_string();
    EXPECT_EQ(a.successful, b->successful) << m.to_string();
    EXPECT_EQ(a.negotiated_version(), b->negotiated_version()) << m.to_string();
    EXPECT_EQ(a.negotiated_class(), b->negotiated_class()) << m.to_string();
    EXPECT_EQ(a.negotiated_kex(), b->negotiated_kex()) << m.to_string();
    EXPECT_EQ(a.negotiated_group(), b->negotiated_group()) << m.to_string();
    EXPECT_EQ(a.adv_rc4, b->adv_rc4) << m.to_string();
    EXPECT_EQ(a.adv_aead, b->adv_aead) << m.to_string();
    EXPECT_EQ(a.heartbeat_negotiated, b->heartbeat_negotiated)
        << m.to_string();
    EXPECT_EQ(a.spec_violations, b->spec_violations) << m.to_string();
    EXPECT_EQ(a.alerts(), b->alerts()) << m.to_string();
    EXPECT_EQ(a.fingerprints.size(), b->fingerprints.size()) << m.to_string();
  }
}

}  // namespace
}  // namespace tls::population
